"""Instruction classes for the guest bytecode.

Two families:

* ordinary instructions, which appear in a basic block's body; and
* terminators (``Br``, ``Jmp``, ``Ret``), exactly one per block.

Instrumentation instructions (``PepInit``, ``PepAdd``, ``PathCount``,
``EdgeCount``, ``Yieldpoint``) are inserted only by compiler passes, never by
guest authors; the verifier enforces this for *sealed* user programs and the
instrumentation passes re-verify afterwards with instrumentation allowed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

ARITH_KINDS = frozenset(
    {"add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr", "min", "max"}
)
CMP_KINDS = frozenset({"lt", "le", "gt", "ge", "eq", "ne"})
BINOP_KINDS = ARITH_KINDS | CMP_KINDS

UNARY_KINDS = frozenset({"neg", "not"})

YIELDPOINT_KINDS = frozenset({"entry", "header", "exit"})

PATH_COUNT_MODES = frozenset({"hash", "array"})


class Instr:
    """Base class for ordinary (non-terminator) instructions."""

    __slots__ = ()

    op: str = "?"

    def clone(self) -> "Instr":
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.__dict__ if hasattr(self, '__dict__') else ''}>"


class Const(Instr):
    """dst <- value"""

    __slots__ = ("dst", "value")
    op = "const"

    def __init__(self, dst: int, value: int) -> None:
        self.dst = dst
        self.value = int(value)

    def clone(self) -> "Const":
        return Const(self.dst, self.value)


class Move(Instr):
    """dst <- src"""

    __slots__ = ("dst", "src")
    op = "move"

    def __init__(self, dst: int, src: int) -> None:
        self.dst = dst
        self.src = src

    def clone(self) -> "Move":
        return Move(self.dst, self.src)


class Unary(Instr):
    """dst <- kind(src); kind in {neg, not}."""

    __slots__ = ("kind", "dst", "src")
    op = "unary"

    def __init__(self, kind: str, dst: int, src: int) -> None:
        if kind not in UNARY_KINDS:
            raise ValueError(f"unknown unary kind {kind!r}")
        self.kind = kind
        self.dst = dst
        self.src = src

    def clone(self) -> "Unary":
        return Unary(self.kind, self.dst, self.src)


class BinOp(Instr):
    """dst <- a kind b, with comparison kinds producing 0/1."""

    __slots__ = ("kind", "dst", "a", "b")
    op = "binop"

    def __init__(self, kind: str, dst: int, a: int, b: int) -> None:
        if kind not in BINOP_KINDS:
            raise ValueError(f"unknown binop kind {kind!r}")
        self.kind = kind
        self.dst = dst
        self.a = a
        self.b = b

    def clone(self) -> "BinOp":
        return BinOp(self.kind, self.dst, self.a, self.b)


class BinOpImm(Instr):
    """dst <- a kind imm (immediate right operand)."""

    __slots__ = ("kind", "dst", "a", "imm")
    op = "binop_imm"

    def __init__(self, kind: str, dst: int, a: int, imm: int) -> None:
        if kind not in BINOP_KINDS:
            raise ValueError(f"unknown binop kind {kind!r}")
        self.kind = kind
        self.dst = dst
        self.a = a
        self.imm = int(imm)

    def clone(self) -> "BinOpImm":
        return BinOpImm(self.kind, self.dst, self.a, self.imm)


class NewArr(Instr):
    """dst <- new zero-filled array of length reg[size]."""

    __slots__ = ("dst", "size")
    op = "newarr"

    def __init__(self, dst: int, size: int) -> None:
        self.dst = dst
        self.size = size

    def clone(self) -> "NewArr":
        return NewArr(self.dst, self.size)


class ALoad(Instr):
    """dst <- arr[idx]"""

    __slots__ = ("dst", "arr", "idx")
    op = "aload"

    def __init__(self, dst: int, arr: int, idx: int) -> None:
        self.dst = dst
        self.arr = arr
        self.idx = idx

    def clone(self) -> "ALoad":
        return ALoad(self.dst, self.arr, self.idx)


class AStore(Instr):
    """arr[idx] <- src"""

    __slots__ = ("arr", "idx", "src")
    op = "astore"

    def __init__(self, arr: int, idx: int, src: int) -> None:
        self.arr = arr
        self.idx = idx
        self.src = src

    def clone(self) -> "AStore":
        return AStore(self.arr, self.idx, self.src)


class ALen(Instr):
    """dst <- len(arr)"""

    __slots__ = ("dst", "arr")
    op = "alen"

    def __init__(self, dst: int, arr: int) -> None:
        self.dst = dst
        self.arr = arr

    def clone(self) -> "ALen":
        return ALen(self.dst, self.arr)


class Call(Instr):
    """dst <- callee(args...); dst may be None for void calls."""

    __slots__ = ("dst", "callee", "args")
    op = "call"

    def __init__(self, dst: Optional[int], callee: str, args: Sequence[int]) -> None:
        self.dst = dst
        self.callee = callee
        self.args: Tuple[int, ...] = tuple(args)

    def clone(self) -> "Call":
        return Call(self.dst, self.callee, self.args)


class Emit(Instr):
    """Append reg[src] to the VM's observable output stream."""

    __slots__ = ("src",)
    op = "emit"

    def __init__(self, src: int) -> None:
        self.src = src

    def clone(self) -> "Emit":
        return Emit(self.src)


# --------------------------------------------------------------------------
# Instrumentation instructions (inserted by compiler passes only).
# --------------------------------------------------------------------------


class PepInit(Instr):
    """Path register r <- 0 (Ball-Larus step 1)."""

    __slots__ = ()
    op = "pep_init"

    def clone(self) -> "PepInit":
        return PepInit()


class PepAdd(Instr):
    """Path register r += value (Ball-Larus step 2)."""

    __slots__ = ("value",)
    op = "pep_add"

    def __init__(self, value: int) -> None:
        self.value = int(value)

    def clone(self) -> "PepAdd":
        return PepAdd(self.value)


class PathCount(Instr):
    """count[r]++ — the expensive Ball-Larus step 3.

    ``mode`` selects the paper's two cost regimes: ``"hash"`` (Jikes-style
    hash-table update, used by the perfect-profile instrumentation) and
    ``"array"`` (classic Ball-Larus array indexing, used by the BLPP
    baseline bench for section 2.2).
    """

    __slots__ = ("mode",)
    op = "path_count"

    def __init__(self, mode: str = "hash") -> None:
        if mode not in PATH_COUNT_MODES:
            raise ValueError(f"unknown path_count mode {mode!r}")
        self.mode = mode

    def clone(self) -> "PathCount":
        return PathCount(self.mode)


class EdgeCount(Instr):
    """Increment the taken or not-taken counter of a bytecode branch.

    ``branch`` is a :class:`~repro.bytecode.method.BranchRef`; ``taken`` says
    which of the branch's two counters to bump.  This is the baseline
    compiler's one-time edge instrumentation (paper section 4.2) and the
    perfect-edge-profile instrumentation (section 5.1).
    """

    __slots__ = ("branch", "taken")
    op = "edge_count"

    def __init__(self, branch: "BranchRefLike", taken: bool) -> None:
        self.branch = branch
        self.taken = bool(taken)

    def clone(self) -> "EdgeCount":
        return EdgeCount(self.branch, self.taken)


class Yieldpoint(Instr):
    """A VM thread-switch point; checks the global flag.

    ``kind`` records placement (method entry, loop header, method exit).
    ``sample_point`` marks yieldpoints where PEP samples the path register —
    exactly the locations where full Ball-Larus would execute count[r]++
    (loop headers and method exits, paper section 3.2/figure 3f).
    """

    __slots__ = ("kind", "sample_point")
    op = "yieldpoint"

    def __init__(self, kind: str, sample_point: bool = False) -> None:
        if kind not in YIELDPOINT_KINDS:
            raise ValueError(f"unknown yieldpoint kind {kind!r}")
        self.kind = kind
        self.sample_point = bool(sample_point)

    def clone(self) -> "Yieldpoint":
        return Yieldpoint(self.kind, self.sample_point)


# --------------------------------------------------------------------------
# Terminators.
# --------------------------------------------------------------------------


class Terminator:
    """Base class for block terminators."""

    __slots__ = ()

    op: str = "?"

    def targets(self) -> Tuple[str, ...]:
        """Labels of successor blocks (possibly empty for Ret)."""
        raise NotImplementedError

    def retarget(self, mapping: dict) -> None:
        """Rewrite target labels through ``mapping`` (identity if missing)."""
        raise NotImplementedError

    def clone(self) -> "Terminator":
        raise NotImplementedError


class Br(Terminator):
    """Conditional branch: if (a kind b) goto then_label else else_label.

    ``origin`` identifies the bytecode-level branch this IR branch profiles
    to; it is assigned at method seal time and preserved by optimizer
    clones.  ``layout`` is the compiler's fall-through choice ("then" or
    "else"): executing the non-fall-through arm pays a taken-branch penalty
    in the cost model, which is how edge-profile-guided code layout
    (sections 4.2/6.5) affects performance.
    """

    __slots__ = (
        "kind",
        "a",
        "b",
        "then_label",
        "else_label",
        "origin",
        "layout",
        "count_arms",
    )
    op = "br"

    def __init__(
        self,
        kind: str,
        a: int,
        b: int,
        then_label: str,
        else_label: str,
        origin: Optional["BranchRefLike"] = None,
        layout: str = "then",
        count_arms: bool = False,
    ) -> None:
        if kind not in CMP_KINDS:
            raise ValueError(f"unknown branch kind {kind!r}")
        if layout not in ("then", "else"):
            raise ValueError(f"layout must be 'then' or 'else', not {layout!r}")
        self.kind = kind
        self.a = a
        self.b = b
        self.then_label = then_label
        self.else_label = else_label
        self.origin = origin
        self.layout = layout
        # When true, the interpreter bumps this branch's taken/not-taken
        # counters on every execution — the baseline compiler's one-time
        # edge instrumentation (section 4.2), modelled as a branch
        # attribute rather than explicit counter instructions so the cost
        # model can charge exactly one counter update per execution.
        self.count_arms = count_arms

    def targets(self) -> Tuple[str, str]:
        return (self.then_label, self.else_label)

    def retarget(self, mapping: dict) -> None:
        self.then_label = mapping.get(self.then_label, self.then_label)
        self.else_label = mapping.get(self.else_label, self.else_label)

    def clone(self) -> "Br":
        return Br(
            self.kind,
            self.a,
            self.b,
            self.then_label,
            self.else_label,
            origin=self.origin,
            layout=self.layout,
            count_arms=self.count_arms,
        )


class Jmp(Terminator):
    """Unconditional jump."""

    __slots__ = ("label",)
    op = "jmp"

    def __init__(self, label: str) -> None:
        self.label = label

    def targets(self) -> Tuple[str]:
        return (self.label,)

    def retarget(self, mapping: dict) -> None:
        self.label = mapping.get(self.label, self.label)

    def clone(self) -> "Jmp":
        return Jmp(self.label)


class Ret(Terminator):
    """Return reg[src] (or 0 when src is None) to the caller."""

    __slots__ = ("src",)
    op = "ret"

    def __init__(self, src: Optional[int] = None) -> None:
        self.src = src

    def targets(self) -> Tuple[str, ...]:
        return ()

    def retarget(self, mapping: dict) -> None:
        return None

    def clone(self) -> "Ret":
        return Ret(self.src)


# Names used in type positions above; the real class lives in method.py and
# is intentionally duck-typed here to avoid a circular import.
BranchRefLike = object

INSTRUMENTATION_OPS = frozenset(
    {"pep_init", "pep_add", "path_count", "edge_count", "yieldpoint"}
)


def is_instrumentation(instr: Instr) -> bool:
    """True for instructions that only compiler passes may insert."""
    return instr.op in INSTRUMENTATION_OPS


def defined_register(instr: Instr) -> Optional[int]:
    """The register written by ``instr``, or None."""
    if instr.op in ("const", "move", "unary", "binop", "binop_imm", "newarr", "aload", "alen"):
        return instr.dst  # type: ignore[attr-defined]
    if instr.op == "call":
        return instr.dst  # type: ignore[attr-defined]
    return None


def used_registers(instr: Instr) -> List[int]:
    """Registers read by ``instr`` (duplicates preserved)."""
    op = instr.op
    if op == "move":
        return [instr.src]  # type: ignore[attr-defined]
    if op == "unary":
        return [instr.src]  # type: ignore[attr-defined]
    if op == "binop":
        return [instr.a, instr.b]  # type: ignore[attr-defined]
    if op == "binop_imm":
        return [instr.a]  # type: ignore[attr-defined]
    if op == "newarr":
        return [instr.size]  # type: ignore[attr-defined]
    if op == "aload":
        return [instr.arr, instr.idx]  # type: ignore[attr-defined]
    if op == "astore":
        return [instr.arr, instr.idx, instr.src]  # type: ignore[attr-defined]
    if op == "alen":
        return [instr.arr]  # type: ignore[attr-defined]
    if op == "call":
        return list(instr.args)  # type: ignore[attr-defined]
    if op == "emit":
        return [instr.src]  # type: ignore[attr-defined]
    return []
