"""Pytest bootstrap: make ``src/`` importable without installation.

The canonical install is ``pip install -e .``; this fallback keeps the test
and benchmark suites runnable from a plain checkout (e.g. offline CI images
that cannot build editable wheels).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
