"""Fixed-point cost folding and the warm token ladder (DESIGN.md §15).

Two PR-9 mechanisms under one contract — bit-identity with the
sequential interpreter:

* **Universal folding.**  ``lower_method`` certifies a method against
  the Q20 grid (``costs.fold_clean`` over ``chargeable_values()``) and
  stamps ``cm.fold_q``; generated code then folds every straight-line
  cost chain to one constant with *no* per-constant cleanliness gate.
  ``REPRO_FIXEDCOST=0`` reverts to the legacy gated codegen and must be
  a pure wall-clock toggle.
* **Warm token ladder.**  A warm method with *no* dominant path still
  compiles into a whole-method ``_m`` dispatch (``WARM_PATH == -1``),
  promoted by the controller below superblock promotion.
  ``REPRO_WARMJIT=0`` is the kill switch; persisted warm artefacts
  survive it for a later enabled process.
"""

from __future__ import annotations

import pickle

import pytest

from repro.adaptive.controller import AdaptiveConfig, AdaptiveSystem
from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.method import Program
from repro.errors import FuelExhaustedError
from repro.persist import payload_checksum
from repro.resilience import FaultPlan, ResilienceManager
from repro.sampling.arnold_grove import SamplingConfig
from repro.util import flags
from repro.vm import blockjit, costs as costs_mod, tracefast
from repro.vm.costs import (
    FOLD_BOUND,
    FOLD_SHIFT,
    CostModel,
    fold_clean,
)
from repro.vm.runtime import VirtualMachine
from repro.vm.superblock import (
    find_dominant_path,
    install_superblock,
    trace_blocks,
)
from repro.workloads.suite import benchmark_suite

from tests.compile_util import compile_simple
from tests.test_superblock import _adaptive_run, _digest, hot_helper_program

ALL_WORKLOADS = [w.name for w in benchmark_suite()]


@pytest.fixture(autouse=True)
def _isolate(monkeypatch):
    # Shared codecache entries would leak fold verdicts and warm
    # artefacts across tests; and the CI kill-switch smokes export
    # REPRO_FIXEDCOST=0 / REPRO_WARMJIT=0 globally, so tests about the
    # enabled mechanisms pin the overrides themselves.
    monkeypatch.setenv("REPRO_CODECACHE", "0")
    monkeypatch.setattr(flags, "FIXEDCOST", True)


def braided_helper_program(calls: int = 240, inner: int = 36) -> Program:
    """main repeatedly calls a helper whose loop splits three ways.

    The 3-way ladder on ``i % 3`` spreads path mass evenly (~1/3 each),
    so no path reaches the 0.5 dominance threshold and the helper never
    earns a trace superblock — it is the warm-ladder promotion target.
    (Two balanced arms would not do: ``find_dominant_path`` accepts a
    path at *exactly* the threshold, so a 50/50 split still dominates.)
    """
    pb = ProgramBuilder("braided")
    helper = pb.function("helper", ["n"])
    n = helper.p("n")
    acc = helper.local(0)

    def body(i):
        r = i % 3

        def arm_a():
            helper.assign(acc, acc + n)
            helper.assign(acc, acc + 1)

        def arm_b():
            helper.assign(acc, acc * 1)
            helper.assign(acc, acc + 2)

        def arm_c():
            helper.assign(acc, acc - 1)
            helper.assign(acc, acc + i)

        helper.if_(r.eq(0), arm_a,
                   lambda: helper.if_(r.eq(1), arm_b, arm_c))

    helper.for_range(0, inner, 1, body)
    helper.ret(acc)

    f = pb.function("main")
    total = f.local(0)
    f.for_range(0, calls, 1,
                lambda i: f.assign(total, total + f.call("helper", i)))
    f.emit(total)
    f.ret(total)
    return pb.build()


def _warm_run(program: Program, warm: bool, resilience=None,
              tick_interval: float = 600.0):
    """One adaptive run with tracefast on and warmjit pinned on/off.

    k-BLPP is pinned off: the braided kernel has no dominant 1-path by
    construction, but its periodic arms DO yield a dominant k-window, and
    the controller's k-fallback would upgrade the warm ladder to a
    multi-iteration trace — these tests exercise the warm tier itself.
    """
    old_tf, old_wj, old_kb = flags.TRACEFAST, flags.WARMJIT, flags.KBLPP
    flags.TRACEFAST, flags.WARMJIT, flags.KBLPP = True, warm, False
    try:
        return _adaptive_run(
            program, superblock=True, resilience=resilience,
            tick_interval=tick_interval,
        )
    finally:
        flags.TRACEFAST, flags.WARMJIT, flags.KBLPP = old_tf, old_wj, old_kb


# -- the Q20 grid ------------------------------------------------------------


def test_fold_clean_grid():
    clean = [
        0.0, 0.5, 1.0, 3.0, -2.5,
        4710 / 4096,          # the recalibrated opt0 multiplier
        4301 / 4096,          # the recalibrated opt1 multiplier
        2.0 ** -FOLD_SHIFT,   # one grid step
        FOLD_BOUND,           # the magnitude bound, inclusive
    ]
    dirty = [
        1.15, 1.05, 0.1,          # the pre-recalibration decimals
        2.0 ** -(FOLD_SHIFT + 1),  # below grid resolution
        FOLD_BOUND * 2,
        float("inf"),
        float("nan"),
    ]
    assert all(fold_clean(v) for v in clean)
    assert not any(fold_clean(v) for v in dirty)


def test_default_model_is_entirely_on_grid():
    # Every chargeable value — per-op base costs under every tier
    # multiplier, plus every injected runtime charge — must sit on the
    # grid, or the default model could not certify anything.
    values = CostModel().chargeable_values()
    assert values  # non-vacuous
    assert all(fold_clean(v) for v in values)


@pytest.mark.parametrize("tier", ["baseline", "opt0", "opt1", "opt2"])
def test_every_workload_certifies_at_every_tier(tier, monkeypatch):
    monkeypatch.setattr(costs_mod, "FOLD_REJECTIONS", 0)
    for workload in benchmark_suite():
        program = workload.build(0.3)
        code = compile_simple(program, mode="pep", tier=tier)
        for name, cm in code.items():
            assert cm.fold_q == FOLD_SHIFT, (workload.name, name)
    assert costs_mod.FOLD_REJECTIONS == 0


def test_dirty_tier_multiplier_demotes_and_counts(monkeypatch):
    # Certification is cross-tier: carried st.cyc crosses method and
    # tier boundaries, so a dirty opt0 multiplier must demote even a
    # method compiled at opt2.
    monkeypatch.setattr(costs_mod, "FOLD_REJECTIONS", 0)
    dirty = CostModel()
    dirty.tier_multipliers = dict(dirty.tier_multipliers)
    dirty.tier_multipliers["opt0"] = 1.15
    code = compile_simple(hot_helper_program(), tier="opt2", costs=dirty)
    assert all(cm.fold_q == 0 for cm in code.values())
    assert costs_mod.FOLD_REJECTIONS == len(code)


def test_dirty_injected_charge_demotes(monkeypatch):
    # The lowered op stream is clean, but a handler could add this
    # charge mid-chain — rejection is the only sound verdict.
    monkeypatch.setattr(costs_mod, "FOLD_REJECTIONS", 0)
    dirty = CostModel()
    dirty.pep_pass_cost_per_instr = 0.1
    code = compile_simple(hot_helper_program(), costs=dirty)
    assert all(cm.fold_q == 0 for cm in code.values())
    assert costs_mod.FOLD_REJECTIONS == len(code)


def test_kill_switch_leaves_fold_q_unset():
    old = flags.FIXEDCOST
    flags.FIXEDCOST = False
    try:
        code = compile_simple(hot_helper_program())
    finally:
        flags.FIXEDCOST = old
    assert all(cm.fold_q is None for cm in code.values())


def test_demoted_method_runs_bit_identically():
    # fold_q == 0 falls back to textual chains; the digest must not
    # move.  (The dirty multiplier itself changes cycles, so both runs
    # use the same dirty model and only the verdict differs.)
    program = hot_helper_program(calls=60, inner=24)
    digests = []
    for force_reject in (False, True):
        dirty = CostModel()
        if force_reject:
            dirty.tier_multipliers = dict(dirty.tier_multipliers)
            dirty.tier_multipliers["opt0"] = 1.15
        code = compile_simple(program, mode="pep", costs=dirty)
        vm = VirtualMachine(code, program.main, costs=dirty, blockjit=True)
        result = vm.run()
        digests.append((result.return_value, list(vm.output)))
    assert digests[0] == digests[1]


# -- fuel aborts mid-chain ---------------------------------------------------


@pytest.mark.parametrize("fuel", [777, 4321, 23456])
def test_fuel_abort_parity_across_folding(fuel):
    # Fuel exhaustion can land anywhere inside a folded chain; the trap
    # path must reconstruct the exact sequential cycle count.  The
    # abort signature (site + cycles) must agree across the
    # interpreter, blockjit, and both fold regimes.
    program = hot_helper_program(calls=40, inner=24)
    seen = set()
    for fixed in (True, False):
        old = flags.FIXEDCOST
        flags.FIXEDCOST = fixed
        try:
            code = compile_simple(program, mode="pep")
        finally:
            flags.FIXEDCOST = old
        for bj in (False, True):
            vm = VirtualMachine(
                code, program.main, costs=CostModel(), blockjit=bj
            )
            with pytest.raises(FuelExhaustedError) as info:
                vm.run(fuel=fuel)
            err = info.value
            seen.add((str(err), err.method, err.block,
                      err.instruction_index, err.cycles))
    assert len(seen) == 1


# -- warm token ladder -------------------------------------------------------


def _warm_flags(monkeypatch):
    monkeypatch.setattr(flags, "TRACEFAST", True)
    monkeypatch.setattr(flags, "SUPERBLOCK", True)
    monkeypatch.setattr(flags, "WARMJIT", True)


def _warm_cm(monkeypatch):
    _warm_flags(monkeypatch)
    code = compile_simple(braided_helper_program(), mode="pep")
    cm = code["helper"]
    assert install_superblock(cm, tracefast.WARM_PATH, CostModel())
    return cm


def test_braided_helper_has_no_dominant_path(monkeypatch):
    _warm_flags(monkeypatch)
    program = braided_helper_program()
    system, vm, _ = _adaptive_run(program, superblock=True)
    counts: dict = {}
    for key, path, freq in vm.path_profile.items():
        if key.startswith("helper#"):
            counts[path] = counts.get(path, 0.0) + freq
    assert counts, "helper collected no path samples — test is vacuous"
    assert find_dominant_path(counts, 0.5, 1.0) is None


def test_warm_install_builds_token_ladder(monkeypatch):
    cm = _warm_cm(monkeypatch)
    assert cm.sb_path == tracefast.WARM_PATH
    assert cm.sb_entry is not None
    assert "def _m(" in cm.sb_source
    assert "warm ladder" in cm.sb_source
    # The ladder rebinds the *method entry* (there is no trace head).
    assert cm.jit_entries[(cm.entry.label, 0)] is cm.sb_entry


def test_warm_install_requires_warmjit_flag(monkeypatch):
    monkeypatch.setattr(flags, "TRACEFAST", True)
    monkeypatch.setattr(flags, "SUPERBLOCK", True)
    monkeypatch.setattr(flags, "WARMJIT", False)
    code = compile_simple(braided_helper_program(), mode="pep")
    cm = code["helper"]
    assert install_superblock(cm, tracefast.WARM_PATH, CostModel()) is False
    assert cm.sb_entry is None


def test_real_trace_upgrades_warm_ladder(monkeypatch):
    # The one first-wins relaxation: a dominant-path trace displaces an
    # installed warm ladder; everything else stays first-wins.
    _warm_flags(monkeypatch)
    code = compile_simple(hot_helper_program(), mode="pep")
    cm = code["helper"]
    assert install_superblock(cm, tracefast.WARM_PATH, CostModel())
    assert cm.sb_path == tracefast.WARM_PATH
    warm_entry = cm.sb_entry

    path = next(
        p for p in range(cm.dag.num_paths)
        if trace_blocks(cm, p) is not None
    )
    assert install_superblock(cm, path, CostModel())
    assert cm.sb_path == path
    assert cm.sb_entry is not warm_entry

    # ... and the settled trace is NOT displaced back to warm.
    assert install_superblock(cm, tracefast.WARM_PATH, CostModel())
    assert cm.sb_path == path


def test_warm_run_digest_parity_and_engagement(monkeypatch):
    program = braided_helper_program()
    on_sys, on_vm, on_res = _warm_run(program, warm=True)
    off_sys, off_vm, off_res = _warm_run(program, warm=False)
    assert on_sys.warmjit_log, "warm ladder never promoted — vacuous"
    assert on_sys.warmjit_log[0][0] == "helper"
    # Advice carries across recompiles: the *final* helper version
    # still holds the ladder.
    assert on_sys.code["helper"].sb_path == tracefast.WARM_PATH
    assert not off_sys.warmjit_log
    assert off_sys.code["helper"].sb_path is None
    assert _digest(on_vm, on_res) == _digest(off_vm, off_res)


def test_warm_pickle_revives_through_ensure_jit(monkeypatch):
    cm = _warm_cm(monkeypatch)
    clone = pickle.loads(pickle.dumps(cm))
    assert clone.sb_entry is None  # callables never pickle
    assert clone.sb_path == tracefast.WARM_PATH
    entries = blockjit.ensure_jit(clone)
    assert clone.sb_entry is not None
    assert entries[(clone.entry.label, 0)] is clone.sb_entry


def test_warm_kill_switch_keeps_persisted_artifacts(monkeypatch):
    cm = _warm_cm(monkeypatch)
    clone = pickle.loads(pickle.dumps(cm))
    monkeypatch.setattr(flags, "WARMJIT", False)
    blockjit.ensure_jit(clone)
    assert clone.sb_entry is None
    # Artefacts stay for a later enabled process: the fingerprint still
    # matches, only the switch is down.
    assert clone.sb_source is not None
    assert clone.sb_path == tracefast.WARM_PATH


def test_warm_stale_fingerprint_drops_cleanly(monkeypatch):
    cm = _warm_cm(monkeypatch)
    clone = pickle.loads(pickle.dumps(cm))
    clone.sb_fingerprint = (clone.sb_fingerprint or 0) ^ 1
    entries = blockjit.ensure_jit(clone)
    assert clone.sb_entry is None
    assert clone.sb_source is None
    assert clone.sb_path is None
    assert (clone.entry.label, 0) in entries


def test_warmjit_compile_fault_degrades(monkeypatch):
    program = braided_helper_program()
    plan = FaultPlan({"warmjit-compile": 1.0}, seed=11)
    res_mgr = ResilienceManager(plan=plan)
    system, vm, result = _warm_run(program, warm=True, resilience=res_mgr)
    assert not system.warmjit_log
    assert system.code["helper"].sb_path is None
    degradations = [
        (policy, detail)
        for policy, detail in res_mgr.health.degradations
        if policy == "warmjit-degrade"
    ]
    assert degradations
    # Degrading is bit-identical to the tier simply being off.
    base_sys, base_vm, base_res = _warm_run(
        program, warm=False, resilience=ResilienceManager()
    )
    assert _digest(vm, result) == _digest(base_vm, base_res)


# -- whole-suite kill-switch parity (all bundled workloads) ---------------


def _flag_checksum(workload: str, fixedcost: bool, warmjit: bool) -> str:
    import repro.api as api

    suite = {w.name: w for w in benchmark_suite()}
    old = (flags.TRACEFAST, flags.SUPERBLOCK, flags.FIXEDCOST, flags.WARMJIT)
    flags.TRACEFAST, flags.SUPERBLOCK = True, True
    flags.FIXEDCOST, flags.WARMJIT = fixedcost, warmjit
    try:
        program = suite[workload].build(0.3)
        report = api.profile_adaptive(
            program, samples=16, stride=3, ticks=100
        )
    finally:
        (flags.TRACEFAST, flags.SUPERBLOCK,
         flags.FIXEDCOST, flags.WARMJIT) = old
    return payload_checksum(
        {
            "paths": sorted(report.paths.items()),
            "edges": sorted((repr(b), c) for b, c in report.edges.items()),
            "output": list(report.result.output),
            "return_value": report.result.return_value,
            "cycles": report.result.cycles,
            "recompilations": report.result.recompilations,
            "compile_cycles": report.result.compile_cycles,
            "health": report.health.to_dict(),
        }
    )


@pytest.mark.parametrize("workload", ALL_WORKLOADS)
def test_workload_digest_parity_every_flag_combo(workload):
    combos = [(True, True), (False, True), (True, False), (False, False)]
    digests = {
        _flag_checksum(workload, fixedcost=fc, warmjit=wj)
        for fc, wj in combos
    }
    assert len(digests) == 1
