"""Tests for dominator computation."""

from repro.cfg.dominators import compute_dominators
from repro.cfg.graph import CFG

from tests.helpers import diamond_loop_method, nested_loop_method


def test_diamond_loop_idoms():
    cfg = CFG.from_method(diamond_loop_method())
    dom = compute_dominators(cfg)
    assert dom.idom["entry"] is None
    assert dom.idom["head"] == "entry"
    assert dom.idom["body"] == "head"
    assert dom.idom["left"] == "body"
    assert dom.idom["right"] == "body"
    # latch is reached via left or right; its idom is the branch point.
    assert dom.idom["latch"] == "body"
    assert dom.idom["exit"] == "head"


def test_dominates_queries():
    cfg = CFG.from_method(diamond_loop_method())
    dom = compute_dominators(cfg)
    assert dom.dominates("entry", "exit")
    assert dom.dominates("head", "latch")
    assert dom.dominates("head", "head")  # reflexive
    assert not dom.dominates("left", "latch")
    assert not dom.dominates("latch", "head")
    assert dom.strictly_dominates("head", "body")
    assert not dom.strictly_dominates("head", "head")


def test_dominators_of_chain():
    cfg = CFG.from_method(diamond_loop_method())
    dom = compute_dominators(cfg)
    chain = dom.dominators_of("latch")
    assert chain == ["latch", "body", "head", "entry"]


def test_nested_loop_dominators():
    cfg = CFG.from_method(nested_loop_method())
    dom = compute_dominators(cfg)
    assert dom.idom["h1"] == "entry"
    assert dom.idom["h2"] == "pre2"
    assert dom.dominates("h1", "h2")
    assert dom.dominates("h1", "post2")
    assert not dom.dominates("h2", "h1")


def test_single_node():
    from tests.helpers import straightline_method

    cfg = CFG.from_method(straightline_method())
    dom = compute_dominators(cfg)
    assert dom.idom["entry"] is None
    assert dom.dominates("entry", "entry")
