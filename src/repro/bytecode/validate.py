"""Bytecode verifier.

Checks the structural invariants the rest of the library assumes:

* every block has exactly one terminator and all branch targets exist;
* register indices are within the method's declared register file;
* the entry block exists and every method has at least one ``ret``;
* instrumentation instructions appear only when explicitly allowed
  (user-authored programs must be instrumentation-free; compiled code is
  re-verified with ``allow_instrumentation=True``);
* call targets resolve when a :class:`~repro.bytecode.method.Program` is
  verified as a whole.
"""

from __future__ import annotations

from typing import Optional

from repro.bytecode.instructions import (
    Br,
    Ret,
    defined_register,
    is_instrumentation,
    used_registers,
)
from repro.bytecode.method import Method, Program
from repro.errors import VerificationError


def verify_method(
    method: Method,
    program: Optional[Program] = None,
    allow_instrumentation: bool = False,
) -> None:
    """Raise :class:`VerificationError` if ``method`` is malformed."""
    if not method.blocks:
        raise VerificationError(f"{method.name}: method has no blocks")
    if method.entry not in method.blocks:
        raise VerificationError(
            f"{method.name}: entry label {method.entry!r} does not exist"
        )

    saw_ret = False
    for block in method.iter_blocks():
        term = block.terminator
        where = f"{method.name}:{block.label}"
        if term is None:
            raise VerificationError(f"{where}: block lacks a terminator")
        for target in term.targets():
            if target not in method.blocks:
                raise VerificationError(
                    f"{where}: branch target {target!r} does not exist"
                )
        if isinstance(term, Ret):
            saw_ret = True
            if term.src is not None:
                _check_reg(method, term.src, where)
        if isinstance(term, Br):
            _check_reg(method, term.a, where)
            _check_reg(method, term.b, where)
            if term.then_label == term.else_label:
                raise VerificationError(
                    f"{where}: degenerate branch with equal targets"
                )

        for instr in block.instrs:
            if is_instrumentation(instr) and not allow_instrumentation:
                raise VerificationError(
                    f"{where}: instrumentation op {instr.op!r} in "
                    "user-authored code"
                )
            dst = defined_register(instr)
            if dst is not None:
                _check_reg(method, dst, where)
            for reg in used_registers(instr):
                _check_reg(method, reg, where)
            if instr.op == "call" and program is not None:
                if instr.callee not in program.methods:  # type: ignore[attr-defined]
                    raise VerificationError(
                        f"{where}: call to unknown method "
                        f"{instr.callee!r}"  # type: ignore[attr-defined]
                    )

    if not saw_ret:
        raise VerificationError(f"{method.name}: method never returns")


def verify_program(program: Program, allow_instrumentation: bool = False) -> None:
    """Verify every method and the program's entry point."""
    if program.main not in program.methods:
        raise VerificationError(
            f"program {program.name!r}: missing main method {program.main!r}"
        )
    if program.main_method().num_params != 0:
        raise VerificationError(
            f"program {program.name!r}: main must take no parameters"
        )
    for method in program.iter_methods():
        verify_method(method, program, allow_instrumentation=allow_instrumentation)


def _check_reg(method: Method, reg: int, where: str) -> None:
    if not isinstance(reg, int) or reg < 0 or reg >= method.num_regs:
        raise VerificationError(
            f"{where}: register r{reg} out of range "
            f"(method declares {method.num_regs})"
        )
