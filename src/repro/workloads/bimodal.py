"""Bimodal alternating-arm loop workloads (DESIGN.md §16).

Each builder centres on a *pulse* kernel: a short loop that strictly
alternates between two arms, so its 1-path samples split ~evenly across
the two iteration paths (diluted further by the prologue path) and no
single acyclic path ever dominates — yet one 2-iteration window does.
This is exactly the shape k-iteration path profiling (k-BLPP, arXiv
1304.5197) exists for: the dominant k-path stitches both arms into one
multi-iteration superblock with the loop back edge as an intra-trace
fall-through, where 1-path trace formation can at best install the warm
token ladder.

The kernels alternate *deterministically* (parity or a flipped toggle);
LCG-derived guest data feeds the arms' arithmetic but never the branch,
because a data-dependent coin would smear the window table the same way
it smears the 1-path table.  Driver structure and calibration follow
:mod:`repro.workloads.specjvm` (chunked workers, ``_per_chunk``).
"""

from __future__ import annotations

from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.method import Program
from repro.workloads.common import hash_step, lcg_bits
from repro.workloads.specjvm import CHUNKS, _per_chunk


def build_zigzag(scale: float = 1.0) -> Program:
    """Parity-alternating accumulate/scramble kernel."""
    pb = ProgramBuilder("zigzag")

    pulse = pb.function("zig_pulse", ["seed"])
    seed = pulse.p("seed")
    acc = pulse.local(0)

    def body(i):
        def even():
            pulse.assign(acc, (acc + seed) & 0xFFFFF)
            pulse.assign(acc, (acc * 33 + i) & 0xFFFFF)
            pulse.assign(acc, (acc ^ (acc >> 7)) & 0xFFFFF)
            pulse.assign(acc, (acc + (seed & 255)) & 0xFFFFF)
            pulse.assign(acc, (acc * 5 + 3) & 0xFFFFF)
            pulse.assign(acc, (acc ^ (seed << 1)) & 0xFFFFF)

        def odd():
            pulse.assign(acc, (acc ^ (seed * 13)) & 0xFFFFF)
            pulse.assign(acc, (acc + (i << 2)) & 0xFFFFF)
            pulse.assign(acc, (acc * 17 + 9) & 0xFFFFF)
            pulse.assign(acc, (acc ^ (acc >> 5)) & 0xFFFFF)
            pulse.assign(acc, (acc + (seed >> 4)) & 0xFFFFF)
            pulse.assign(acc, (acc * 3 + 1) & 0xFFFFF)

        pulse.if_((i % 2).eq(0), even, odd)

    pulse.for_range(0, 4, 1, body)
    pulse.ret(acc)

    w = pb.function("zigzag_chunk", ["g"])
    g = w.p("g")
    state = w.load(g, 0)
    total = w.load(g, 1)

    def per_item(_j):
        s = lcg_bits(w, state, 16)
        w.assign(total, (total + w.call("zig_pulse", s)) & 0xFFFFF)
        hash_step(w, total, s)
        # Rare checksum fold — biased driver branch, outside the kernel.
        w.if_((s & 15).eq(0), lambda: hash_step(w, total, 97))

    w.for_range(0, _per_chunk(620, scale), 1, per_item)
    w.store(g, 0, state)
    w.store(g, 1, total)
    w.ret()

    f = pb.function("main")
    g_main = f.array(f.const(2))
    f.store(g_main, 0, 9191)
    f.for_range(0, CHUNKS, 1, lambda _b: f.call_void("zigzag_chunk", g_main))
    result = f.load(g_main, 1)
    f.emit(result)
    f.ret(result)
    return pb.build()


def build_seesaw(scale: float = 1.0) -> Program:
    """Toggle-flipped load/settle kernel (state alternation, not parity)."""
    pb = ProgramBuilder("seesaw")

    pulse = pb.function("saw_pulse", ["seed"])
    seed = pulse.p("seed")
    acc = pulse.local(0)
    tilt = pulse.local(0)

    def body(i):
        def load_side():
            pulse.assign(acc, (acc + (seed << 1)) & 0xFFFFF)
            pulse.assign(acc, (acc * 21 + i) & 0xFFFFF)
            pulse.assign(acc, (acc ^ (seed >> 3)) & 0xFFFFF)
            pulse.assign(acc, (acc + 77) & 0xFFFFF)
            pulse.assign(acc, (acc * 9 + (seed & 63)) & 0xFFFFF)

        def settle_side():
            pulse.assign(acc, (acc ^ (acc >> 9)) & 0xFFFFF)
            pulse.assign(acc, (acc + (i * 3)) & 0xFFFFF)
            pulse.assign(acc, (acc * 7 + 5) & 0xFFFFF)
            pulse.assign(acc, (acc ^ (seed * 29)) & 0xFFFFF)
            pulse.assign(acc, (acc + (seed & 31)) & 0xFFFFF)

        pulse.if_(tilt.eq(0), load_side, settle_side)
        pulse.assign(tilt, 1 - tilt)

    pulse.for_range(0, 6, 1, body)
    pulse.ret(acc)

    w = pb.function("seesaw_chunk", ["g"])
    g = w.p("g")
    state = w.load(g, 0)
    total = w.load(g, 1)

    def per_item(_j):
        s = lcg_bits(w, state, 16)
        w.assign(total, (total + w.call("saw_pulse", s)) & 0xFFFFF)
        hash_step(w, total, s)
        # Rare checksum fold — biased driver branch, outside the kernel.
        w.if_((s & 15).eq(0), lambda: hash_step(w, total, 89))

    w.for_range(0, _per_chunk(460, scale), 1, per_item)
    w.store(g, 0, state)
    w.store(g, 1, total)
    w.ret()

    f = pb.function("main")
    g_main = f.array(f.const(2))
    f.store(g_main, 0, 2468)
    f.for_range(0, CHUNKS, 1, lambda _b: f.call_void("seesaw_chunk", g_main))
    result = f.load(g_main, 1)
    f.emit(result)
    f.ret(result)
    return pb.build()


def build_pingpong(scale: float = 1.0) -> Program:
    """Parity-alternating produce/consume kernel with asymmetric arms."""
    pb = ProgramBuilder("pingpong")

    pulse = pb.function("rally", ["seed"])
    seed = pulse.p("seed")
    acc = pulse.local(0)

    def body(i):
        def produce():
            pulse.assign(acc, (acc + (seed * 11)) & 0xFFFFF)
            pulse.assign(acc, (acc ^ (i << 3)) & 0xFFFFF)
            pulse.assign(acc, (acc * 13 + 2) & 0xFFFFF)
            pulse.assign(acc, (acc + (seed >> 2)) & 0xFFFFF)

        def consume():
            pulse.assign(acc, (acc - (acc >> 4)) & 0xFFFFF)
            pulse.assign(acc, (acc ^ (seed + i)) & 0xFFFFF)
            pulse.assign(acc, (acc * 25 + 7) & 0xFFFFF)
            pulse.assign(acc, (acc + (seed & 127)) & 0xFFFFF)
            pulse.assign(acc, (acc ^ (acc >> 11)) & 0xFFFFF)
            pulse.assign(acc, (acc + 13) & 0xFFFFF)

        pulse.if_((i % 2).eq(0), produce, consume)

    pulse.for_range(0, 4, 1, body)
    pulse.ret(acc)

    w = pb.function("pingpong_chunk", ["g"])
    g = w.p("g")
    state = w.load(g, 0)
    total = w.load(g, 1)

    def per_item(_j):
        s = lcg_bits(w, state, 16)
        w.assign(total, (total + w.call("rally", s)) & 0xFFFFF)
        hash_step(w, total, s)
        # Rare checksum fold — biased driver branch, outside the kernel.
        w.if_((s & 15).eq(0), lambda: hash_step(w, total, 83))

    w.for_range(0, _per_chunk(560, scale), 1, per_item)
    w.store(g, 0, state)
    w.store(g, 1, total)
    w.ret()

    f = pb.function("main")
    g_main = f.array(f.const(2))
    f.store(g_main, 0, 7777)
    f.for_range(0, CHUNKS, 1, lambda _b: f.call_void("pingpong_chunk", g_main))
    result = f.load(g_main, 1)
    f.emit(result)
    f.ret(result)
    return pb.build()
