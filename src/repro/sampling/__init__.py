"""Sampling controllers: the yieldpoint-handler strategies.

* :class:`~repro.sampling.arnold_grove.SamplingConfig` — the
  PEP(SAMPLES, STRIDE) configuration from paper section 4.4;
* :class:`~repro.sampling.arnold_grove.ArnoldGroveSampler` — regular and
  *simplified* Arnold-Grove sampling (figure 5), recording path samples
  and deriving edge-profile updates at PEP sample points;
* :class:`~repro.sampling.arnold_grove.TimerMethodSampler` — flag-clearing
  sampler used when only adaptive method sampling is wanted (no PEP).
"""

from repro.sampling.arnold_grove import (
    ArnoldGroveSampler,
    SamplingConfig,
    TimerMethodSampler,
)

__all__ = ["ArnoldGroveSampler", "SamplingConfig", "TimerMethodSampler"]
