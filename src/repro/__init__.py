"""PEP: continuous path and edge profiling.

A full reproduction of Bond & McKinley, "Continuous Path and Edge
Profiling" (MICRO 2005), including the virtual-machine substrate it runs
on.  See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results.

Public entry points:

* :mod:`repro.bytecode` — guest ISA and program builder
* :mod:`repro.lang` — mini-language front end
* :mod:`repro.cfg` — control-flow graphs, loops, and the P-DAG
* :mod:`repro.profiling` — Ball-Larus / smart path numbering and profiles
* :mod:`repro.instrument` — PEP, full-BLPP, and edge instrumentation passes
* :mod:`repro.sampling` — timer + (simplified) Arnold-Grove sampling
* :mod:`repro.vm` — the interpreter and virtual-cycle cost model
* :mod:`repro.adaptive` — baseline/optimizing compilers, adaptive + replay
* :mod:`repro.metrics` — Wall matching, overlap, overhead summaries
* :mod:`repro.workloads` — synthetic SPEC JVM98 / DaCapo-like benchmarks
* :mod:`repro.harness` — experiment driver used by the benches
* :mod:`repro.resilience` — fault injection + graceful degradation
* :mod:`repro.api` — one-call profiling (``api.profile(program)``)
* :mod:`repro.persist` — JSON advice files and profile serialization
* ``python -m repro`` — CLI: run/profile/disasm MiniJ programs
"""

__version__ = "1.0.0"
