"""CFG surgery shared by the instrumentation passes.

Two operations:

* :func:`split_loop_headers` — the figure 3(a)/(b) transformation: each
  loop header keeps its label and its leading yieldpoint ("top") and the
  remainder of the block moves to a fresh "bottom" block.  The top->bottom
  edge is the one the P-DAG truncates.

* :func:`split_edge` — classic critical-edge splitting: materialise a
  basic block on one CFG edge so instrumentation can be placed on *that
  edge only*.  Used when an edge with a non-zero Ball-Larus value has a
  multi-successor source and a multi-predecessor target.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.bytecode.instructions import Br, Instr, Jmp, Yieldpoint
from repro.bytecode.method import BasicBlock, Method
from repro.errors import InstrumentationError


def split_loop_headers(method: Method, headers: Iterable[str]) -> Dict[str, str]:
    """Split each loop header after its leading yieldpoint.

    The header keeps its label (so all incoming edges, including back
    edges, still enter the top) and retains only its leading yieldpoint;
    everything else moves to a new ``<label>.bot`` block that the top jumps
    to.  Returns the top -> bottom label map consumed by
    :func:`repro.cfg.dag.build_pep_dag`.
    """
    mapping: Dict[str, str] = {}
    for label in headers:
        block = method.block(label)
        bottom_label = f"{label}.bot"
        if bottom_label in method.blocks:
            raise InstrumentationError(
                f"{method.name}: header {label!r} appears already split"
            )

        keep: List[Instr] = []
        rest: List[Instr] = list(block.instrs)
        if rest and isinstance(rest[0], Yieldpoint):
            keep.append(rest.pop(0))

        bottom = BasicBlock(bottom_label, rest, block.terminator)
        method.add_block(bottom)
        block.instrs = keep
        block.terminator = Jmp(bottom_label)
        mapping[label] = bottom_label
    return mapping


def ensure_entry_preheader(method: Method) -> str:
    """Give the method a fresh entry block jumping to the old one.

    Needed when the entry block is itself a loop header: the path-numbering
    ENTRY node must not coincide with a split header, so a preheader is
    materialised (real compilers do the same).  Returns the new entry label.
    """
    old_entry = method.entry
    if old_entry is None:
        raise InstrumentationError(f"{method.name}: method has no blocks")
    label = "__pre_entry__"
    suffix = 0
    while label in method.blocks:
        suffix += 1
        label = f"__pre_entry__{suffix}"
    method.add_block(BasicBlock(label, [], Jmp(old_entry)))
    method.entry = label
    return label


def split_edge(method: Method, src_label: str, dst_label: str) -> str:
    """Insert a block on the edge src -> dst; returns its label.

    The new block initially holds no instructions and jumps to ``dst``;
    callers append instrumentation to it.  For a conditional branch with
    both arms pointing at ``dst`` this retargets only the first arm —
    but the verifier rejects such degenerate branches, so in practice the
    edge is unambiguous.
    """
    src = method.block(src_label)
    term = src.terminator
    if term is None:
        raise InstrumentationError(
            f"{method.name}:{src_label}: cannot split edge out of an "
            "unterminated block"
        )
    mid_label = f"{src_label}.to.{dst_label}"
    suffix = 0
    while mid_label in method.blocks:
        suffix += 1
        mid_label = f"{src_label}.to.{dst_label}.{suffix}"

    if isinstance(term, Jmp):
        if term.label != dst_label:
            raise InstrumentationError(
                f"{method.name}: no edge {src_label}->{dst_label}"
            )
        term.label = mid_label
    elif isinstance(term, Br):
        if term.then_label == dst_label:
            term.then_label = mid_label
        elif term.else_label == dst_label:
            term.else_label = mid_label
        else:
            raise InstrumentationError(
                f"{method.name}: no edge {src_label}->{dst_label}"
            )
    else:
        raise InstrumentationError(
            f"{method.name}:{src_label}: cannot split an edge out of a "
            f"{term.op!r} terminator"
        )

    method.add_block(BasicBlock(mid_label, [], Jmp(dst_label)))
    return mid_label
