"""Figure 7: compilation + execution overhead of PEP.

Paper result (first replay iteration, which includes compile time):
1.6% average and 4.6% maximum overhead — higher than execution-only
overhead because PEP's three extra compiler passes add proportionally
more to compilation than its instrumentation adds to execution, and
short-running programs feel it most.

Shape asserted: first-iteration overhead exceeds second-iteration
overhead on average, stays single-digit, and the shortest benchmark
(jack) has above-median compilation-inclusive overhead.
"""

from benchmarks._common import average, context_for, emit, suite
from repro.harness.experiment import INSTR_ONLY, run_config
from repro.harness.report import render_overhead_figure


def regenerate():
    normalized = {"iter1 (compile+run)": {}, "iter2 (run only)": {}}
    for workload in suite():
        ctx = context_for(workload)
        base_image = ctx.image(None)
        base_it1 = ctx.base_cycles + base_image.compile_cycles

        _, it2 = run_config(ctx, INSTR_ONLY)
        pep_image = ctx.image("pep")
        it1_cycles = it2.cycles + pep_image.compile_cycles

        normalized["iter1 (compile+run)"][workload.name] = it1_cycles / base_it1
        normalized["iter2 (run only)"][workload.name] = (
            it2.cycles / ctx.base_cycles
        )
    return normalized


def test_fig7_compilation_overhead(benchmark):
    normalized = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    names = [w.name for w in suite()]
    emit(
        render_overhead_figure(
            "Figure 7: compilation + execution overhead (first replay iteration)",
            names,
            ["iter1 (compile+run)", "iter2 (run only)"],
            normalized,
        )
    )

    it1 = [normalized["iter1 (compile+run)"][n] - 1.0 for n in names]
    it2 = [normalized["iter2 (run only)"][n] - 1.0 for n in names]

    # Compilation-inclusive overhead exceeds execution-only overhead.
    assert average(it1) > average(it2)
    # ...but stays modest (paper: 1.6% avg, 4.6% max).
    assert average(it1) < 0.08
    assert max(it1) < 0.12

    # The short-running benchmark feels compilation the most (paper: jack).
    jack_rank = sorted(names, key=lambda n: normalized["iter1 (compile+run)"][n])
    assert jack_rank.index("jack") >= len(names) // 3
