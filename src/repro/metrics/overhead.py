"""Overhead summaries in the paper's reporting conventions.

Figures 6, 7, 10, and 11 report per-benchmark execution time normalized
to a Base configuration, with an average and a maximum quoted in the
text.  These helpers turn raw virtual-cycle measurements into those
numbers.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.util.stats import normalize, overhead_summary


def normalized_times(
    measured: Dict[str, float],
    base: Dict[str, float],
) -> Dict[str, float]:
    """Per-benchmark time(config)/time(Base)."""
    return normalize(measured, base)


def summarize_overhead(
    measured: Dict[str, float],
    base: Dict[str, float],
) -> Tuple[Dict[str, float], float, float]:
    """Returns (normalized per-benchmark, average overhead, max overhead).

    Overheads are fractions: 0.012 means +1.2%.
    """
    normalized = normalize(measured, base)
    average, worst = overhead_summary(normalized)
    return normalized, average, worst
