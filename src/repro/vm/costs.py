"""The virtual-cycle cost model.

Every guest instruction charges a fixed number of virtual cycles; the
instrumentation instructions charge costs reflecting the paper's central
cost asymmetry (section 3.2):

    path-register add  <<  per-branch counter update  <<  hashed
    count[r]++ / sample handler invocation

The absolute values below are calibrated so that, on the synthetic
workload suite, the *relationships* the paper reports emerge: full
hash-based path instrumentation costs tens of percent (92% average in the
paper), per-branch edge instrumentation costs around ten percent, and
PEP's register adds cost around one percent.

Fixed-point cost grid
---------------------
Every charge the model can produce lies on the dyadic grid of multiples
of ``2**-FOLD_SHIFT`` (the base costs are halves, the tier multipliers
are calibrated as exact multiples of 2^-12, and ``sampling_dilation``
defaults to a power of two).  On that grid IEEE-754 double addition is
*exact* for any realistic accumulation (sums stay far below
``2**(53 - FOLD_SHIFT)`` virtual cycles), which means re-associating a
straight-line cost chain — folding it into one constant at codegen time
— is bit-identical to charging each op sequentially.  DESIGN.md §15
develops this; :func:`fold_clean` is the certification predicate.

Sampling-time dilation
----------------------
Our benchmark runs are ~10^4x shorter than the paper's (hundreds of
thousands of virtual cycles instead of ~10^10 real cycles), but they
receive the *same number of timer ticks* (a few hundred) so that profile
accuracy is comparable.  Per-tick handler work therefore occupies a far
larger *fraction* of a scaled-down run than of a real run.  To keep the
sampling-overhead ratio meaningful, handler costs are divided by
``sampling_dilation``: the factor by which our inter-tick gap is shorter
than the paper's (20 ms on a 3.2 GHz P4 = 64M cycles between ticks; ours
default to a few thousand).  Instrumentation costs are NOT dilated — they
scale with executed work, which is preserved.  DESIGN.md discusses this
substitution.
"""

from __future__ import annotations

#: Fixed-point accounting grid (DESIGN.md §15): a charge is
#: fixed-representable when it is an exact multiple of ``2**-FOLD_SHIFT``
#: and bounded by ``FOLD_BOUND``.  Q20 leaves 33 integer bits of exact
#: headroom (sums below ~8.6e9 virtual cycles — far beyond any
#: fuel-bounded run), so float addition of grid values never rounds and
#: the single ``int -> float`` boundary division at a flush is exact.
FOLD_SHIFT = 20
FOLD_SCALE = float(1 << FOLD_SHIFT)
FOLD_BOUND = 2.0 ** 24

#: Methods whose lowered charges failed :func:`fold_clean` certification
#: and fell back to the legacy float codegen path.  The bench fold_coverage
#: gate and the tier-1 suite both assert this stays zero under the default
#: cost model; only genuinely unrepresentable *injected* costs (ablation
#: benches mutating fields to non-dyadic values) bump it.
FOLD_REJECTIONS = 0


def record_fold_rejection() -> None:
    """Count one method falling back to float accumulation."""
    global FOLD_REJECTIONS
    FOLD_REJECTIONS += 1


def fold_clean(value: float) -> bool:
    """True when ``value`` lies on the fixed-point grid.

    Grid membership is what makes folding sound: products of clean
    values' sums with exact boundary conversion reproduce sequential
    float accumulation bit for bit.  NaN/inf and out-of-range magnitudes
    are rejected (``abs(nan) <= bound`` is False, so they fall out of the
    first test).
    """
    return abs(value) <= FOLD_BOUND and (value * FOLD_SCALE).is_integer()


class CostModel:
    """Per-operation virtual-cycle charges.

    Mutable on purpose: ablation benches tweak individual fields (e.g.
    hash vs array path counters) without re-plumbing every constructor.
    """

    __slots__ = (
        "simple_op",
        "mem_op",
        "newarr_op",
        "call_op",
        "ret_op",
        "emit_op",
        "jmp_op",
        "branch_op",
        "branch_mislayout_penalty",
        "yieldpoint_op",
        "pep_init",
        "pep_add",
        "path_count_hash",
        "path_count_array",
        "edge_count",
        "handler_stride",
        "handler_sample",
        "handler_expand_first",
        "handler_method_sample",
        "sampling_dilation",
        "tier_multipliers",
        "compile_cost_per_instr",
        "pep_pass_cost_per_instr",
    )

    def __init__(self) -> None:
        # Ordinary execution.
        self.simple_op = 1.0  # const/move/unary/binop
        self.mem_op = 2.0  # array load/store/len
        self.newarr_op = 6.0  # allocation + zeroing (amortised)
        self.call_op = 6.0  # frame setup, argument copy
        self.ret_op = 2.0
        self.emit_op = 2.0
        self.jmp_op = 1.0
        self.branch_op = 2.0
        # Extra cycles when the taken arm is not the laid-out fall-through:
        # this is the lever profile-guided code layout pulls (section 6.5).
        self.branch_mislayout_penalty = 3.0
        self.yieldpoint_op = 1.0  # flag test; present in Base too

        # Instrumentation (section 3.2's cheap/expensive split).
        self.pep_init = 0.5  # r = 0: one register write, dual-issues
        self.pep_add = 0.5  # r += const: one register add, dual-issues
        self.path_count_hash = 60.0  # Jikes-style hash-table update
        self.path_count_array = 20.0  # classic BL array increment
        self.edge_count = 2.0  # load-increment-store on a counter pair

        # Yieldpoint-handler work, charged only when the flag is set.
        # "Taking a sample is almost as expensive as striding over a
        # sample" (section 4.4) — hence stride ~= sample.
        self.handler_stride = 60.0
        self.handler_sample = 80.0
        self.handler_expand_first = 400.0  # first-time path->edges expansion
        self.handler_method_sample = 40.0  # adaptive-system method sample

        # See module docstring: scales handler costs to compensate for
        # time-dilated runs.
        self.sampling_dilation = 512.0

        # Compiled-code quality: unoptimized baseline code runs ~3x slower.
        # The opt0/opt1 values are calibrated *on the fixed-point grid*
        # (exact multiples of 2^-12, within 0.01% of the nominal 1.15 /
        # 1.05) so every tier's per-op charges are fixed-representable
        # and cost chains fold exactly at codegen time (DESIGN.md §15).
        self.tier_multipliers = {
            "baseline": 3.0,
            "opt0": 4710 / 4096,  # 1.14990234375 ~ nominal 1.15 (-0.0085%)
            "opt1": 4301 / 4096,  # 1.050048828125 ~ nominal 1.05 (+0.0047%)
            "opt2": 1.0,
        }

        # Compile-time cycles per static instruction, per tier.
        self.compile_cost_per_instr = {
            "baseline": 30.0,
            "opt0": 300.0,
            "opt1": 600.0,
            "opt2": 1100.0,
        }
        # PEP's three extra passes (build P-DAG, number, insert) are quick
        # relative to optimization (section 6.2).
        self.pep_pass_cost_per_instr = 60.0

    def tier_multiplier(self, tier: str) -> float:
        try:
            return self.tier_multipliers[tier]
        except KeyError:
            raise ValueError(f"unknown tier {tier!r}") from None

    def compile_cost(self, tier: str, instruction_count: int) -> float:
        try:
            per = self.compile_cost_per_instr[tier]
        except KeyError:
            raise ValueError(f"unknown tier {tier!r}") from None
        return per * instruction_count

    def scaled_handler(self, raw: float) -> float:
        """A handler cost after sampling-time dilation."""
        return raw / self.sampling_dilation

    def injected_charges(self) -> list:
        """Every charge the runtime can add to an accumulator *outside*
        a method's lowered op stream: yieldpoint-handler work, the PEP
        instrumentation passes, and per-tier compile costs.  Fixed-point
        certification (``lower_method``) scans these alongside the
        lowered costs — a single dirty injectable would desynchronise a
        folded chain from the sequential reference the moment a handler
        fires inside it."""
        return [
            self.scaled_handler(self.handler_stride),
            self.scaled_handler(self.handler_sample),
            self.scaled_handler(self.handler_expand_first),
            self.scaled_handler(self.handler_method_sample),
            self.pep_pass_cost_per_instr,
            *self.compile_cost_per_instr.values(),
        ]

    def chargeable_values(self) -> list:
        """Every constant this model can bake into lowered code at ANY
        tier (per-op base costs times each tier multiplier), plus the
        injected runtime charges.

        This is the *global* certification set for fixed-point folding:
        the carried accumulator (``st.cyc``) crosses method and tier
        boundaries, so a folded chain's base is grid-valued only if
        every method in the program — whatever its tier — charges grid
        values.  A superset of what any one method actually charges,
        which is exactly the conservatism certification wants.
        """
        base = [
            self.simple_op,
            self.mem_op,
            self.newarr_op,
            self.call_op,
            self.ret_op,
            self.emit_op,
            self.jmp_op,
            self.branch_op,
            self.branch_mislayout_penalty,
            self.yieldpoint_op,
            self.pep_init,
            self.pep_add,
            self.path_count_hash,
            self.path_count_array,
            self.edge_count,
        ]
        out = self.injected_charges()
        for mult in self.tier_multipliers.values():
            out.extend(value * mult for value in base)
        return out

    def copy(self) -> "CostModel":
        other = CostModel()
        for field in self.__slots__:
            value = getattr(self, field)
            if isinstance(value, dict):
                value = dict(value)
            setattr(other, field, value)
        return other
