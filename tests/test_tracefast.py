"""Slotted-frame tracefast backend bit-identity and lifecycle (DESIGN.md §13).

The tracefast tier is a second codegen backend behind the same template
contract as the §11 superblock: registers promoted to locals across the
whole method, straight-line cost chains batched (and constant-folded
when provably exact), and an optional AOT-compiled module for the
hottest traces.  None of that may move a single bit: every test here
pins return values, outputs, exact virtual cycles, path/edge profiles,
ticks, samples, traps, fuel accounting and health records against the
classic superblock backend, plain blockjit, and the interpreter —
including under fault plans, codecache-style pickle round-trips, and
with the AOT tier forced off.  ``REPRO_TRACEFAST=0`` is the kill switch
and must revert to the classic backend byte-identically.
"""

from __future__ import annotations

import pickle

import pytest

from repro.persist import payload_checksum
from repro.resilience import FaultPlan, ResilienceManager
from repro.util import flags
from repro.vm import blockjit, tracefast
from repro.vm.costs import FOLD_SHIFT, CostModel
from repro.vm.runtime import VirtualMachine
from repro.vm.superblock import (
    find_dominant_path,
    install_superblock,
    superblock_fingerprint,
    trace_blocks,
)
from repro.vm.tracefast import (
    _clean_const,
    _fold_safe,
    entry_tokens,
    generate_method_source,
    install_tracefast,
)
from repro.workloads.suite import benchmark_suite

from tests.test_superblock import (
    _adaptive_run,
    _digest,
    _installable_path,
    _pep_image,
    hot_helper_program,
)

ALL_WORKLOADS = [w.name for w in benchmark_suite()]


@pytest.fixture(autouse=True)
def _isolate_codecache(monkeypatch):
    # Same isolation as test_superblock: the content-addressed compile
    # cache shares CompiledMethod instances across AdaptiveSystems, so a
    # trace installed by one test would leak into the next.
    monkeypatch.setenv("REPRO_CODECACHE", "0")


@pytest.fixture(autouse=True)
def _tracefast_on(monkeypatch):
    # Pin the backend on for every test in this file (the CI kill-switch
    # smoke exports REPRO_TRACEFAST=0 globally; these tests are about
    # the enabled backend unless they pin the flag themselves).
    monkeypatch.setattr(flags, "TRACEFAST", True)


def _tf_run(program, tf, superblock=True, resilience=None,
            tick_interval=600.0, min_samples=4.0):
    """One adaptive run with the tracefast backend pinned on or off."""
    old = flags.TRACEFAST
    flags.TRACEFAST = tf
    try:
        return _adaptive_run(
            program, superblock=superblock, resilience=resilience,
            tick_interval=tick_interval, min_samples=min_samples,
        )
    finally:
        flags.TRACEFAST = old


# -- flag resolution ---------------------------------------------------------


def test_kill_switch_environment_resolution(monkeypatch):
    monkeypatch.setattr(flags, "TRACEFAST", None)
    monkeypatch.setenv(flags.TRACEFAST_ENV, "0")
    assert flags.tracefast_enabled() is False
    monkeypatch.setenv(flags.TRACEFAST_ENV, "1")
    assert flags.tracefast_enabled() is True
    monkeypatch.delenv(flags.TRACEFAST_ENV)
    assert flags.tracefast_enabled() is True  # default on


def test_aot_flag_environment_resolution(monkeypatch):
    monkeypatch.setattr(flags, "TRACEFAST_AOT", None)
    monkeypatch.setenv(flags.TRACEFAST_AOT_ENV, "0")
    assert flags.tracefast_aot_enabled() is False
    monkeypatch.delenv(flags.TRACEFAST_AOT_ENV)
    assert flags.tracefast_aot_enabled() is True  # default on (gated)


# -- codegen: source shape, tokens, fold gate --------------------------------


def _traced_cm():
    code = _pep_image(hot_helper_program())
    cm = code["helper"]
    path = _installable_path(cm)
    assert path is not None
    return cm, path, trace_blocks(cm, path)


def test_generated_source_shape():
    cm, _, trace = _traced_cm()
    source = generate_method_source(cm, trace)
    # One whole-method function on a token ladder, plus thin wrappers
    # baking each entry token for the unchanged blockjit driver.
    assert "def _m(vm, frame, regs, st, _e):" in source
    assert "_fuel = st.fuel" in source
    assert "_cyc = st.cyc" in source
    assert "while True:" in source
    assert "if _e == " in source
    assert "def _f0_0(vm, frame, regs, st):" in source
    # Every (block, entry-ip) pair has a wrapper and a dense token.
    tokens = entry_tokens(cm)
    assert sorted(tokens.values()) == list(range(len(tokens)))


def test_entry_tokens_are_deterministic():
    cm_a, _, _ = _traced_cm()
    cm_b, _, _ = _traced_cm()
    remap = {  # same program compiled twice: same label/ip -> token map
        key: tok for key, tok in entry_tokens(cm_a).items()
    }
    assert remap == entry_tokens(cm_b)


def test_clean_const_gate():
    # Clean: multiples of 2**-12 below 2**24 (float addition over these
    # is exact, hence associative, hence foldable bit-identically).
    assert _clean_const(0.0)
    assert _clean_const(1.0)
    assert _clean_const(2.5)
    assert _clean_const(0.000244140625)  # 2**-12 exactly
    assert _clean_const(-60.0)
    # Dirty: full-mantissa values or magnitudes past the exactness bound.
    assert not _clean_const(1.15)
    assert not _clean_const(0.1)
    assert not _clean_const(2.0**25)
    assert not _clean_const(float("nan"))
    assert not _clean_const(float("inf"))


def test_fold_safe_rejects_dirty_cost_model():
    cm, _, _ = _traced_cm()
    clean = CostModel()
    assert _fold_safe(cm, clean)
    dirty = CostModel()
    dirty.pep_pass_cost_per_instr = 0.1  # not a 2**-12 multiple
    assert not _fold_safe(cm, dirty)


def test_fold_only_with_certified_costs(monkeypatch):
    # Pin fixed-point accounting on (the CI kill-switch smoke exports
    # REPRO_FIXEDCOST=0 globally; the first half of this test is about
    # the certified path).
    monkeypatch.setattr(flags, "FIXEDCOST", True)
    cm, _, trace = _traced_cm()
    # Fixed-point accounting (the default): lowering already certified
    # the whole cost universe on the Q20 grid (fold_q), so every chain
    # folds regardless of the ``costs`` argument.
    assert cm.fold_q == FOLD_SHIFT
    assert generate_method_source(cm, trace, CostModel()) == (
        generate_method_source(cm, trace, None)
    )
    # Legacy lowering (REPRO_FIXEDCOST=0 -> fold_q is None): folding is
    # gated on a certified cost model, per-method.
    cm.fold_q = None
    folded = generate_method_source(cm, trace, CostModel())
    unfolded = generate_method_source(cm, trace, None)
    assert folded != unfolded
    # The fold collapses straight-line cost chains into one constant,
    # so the folded body performs strictly fewer runtime additions.
    assert folded.count(" + ") < unfolded.count(" + ")


# -- installation ------------------------------------------------------------


def test_install_tracefast_rebinds_every_entry():
    cm, path, trace = _traced_cm()
    assert install_tracefast(cm, path, CostModel()) is True
    assert cm.sb_entry is not None
    assert cm.sb_path == path
    assert cm.sb_source is not None
    assert "def _m(" in cm.sb_source
    assert cm.sb_fingerprint == superblock_fingerprint(cm, path)
    # Every entry (not just the trace head) routes into the
    # whole-method dispatcher via its token wrapper.
    for (label, ip), entry in cm.jit_entries.items():
        assert entry.__name__.startswith("_f")
    assert cm.jit_entries[(trace[0].label, 0)] is cm.sb_entry
    # First-wins: a second install (any path) is a no-op.
    assert install_tracefast(cm, path) is True


def test_install_superblock_front_door_selects_tracefast():
    cm, path, _ = _traced_cm()
    assert install_superblock(cm, path, CostModel()) is True
    assert "def _m(" in cm.sb_source  # tracefast source, not classic _sb
    flags.TRACEFAST = False
    cm2, path2, _ = _traced_cm()
    assert install_superblock(cm2, path2, CostModel()) is True
    assert "def _sb(" in cm2.sb_source  # classic single-trace backend


def test_install_tracefast_rejects_acyclic_path():
    cm, _, _ = _traced_cm()
    acyclic = next(
        p for p in range(cm.dag.num_paths) if trace_blocks(cm, p) is None
    )
    assert install_tracefast(cm, acyclic) is False
    assert cm.sb_entry is None


# -- static-image parity -----------------------------------------------------


def _run_image(program, install, tf, use_blockjit=True, costs=None,
               sampler=(8, 3), tick_interval=500.0):
    from repro.sampling.arnold_grove import make_sampler

    old = flags.TRACEFAST
    flags.TRACEFAST = tf
    try:
        code = _pep_image(program)
        if install:
            cm = code["helper"]
            assert install_superblock(cm, _installable_path(cm), costs)
        vm = VirtualMachine(
            code, program.main, costs=CostModel(),
            tick_interval=tick_interval, sampler=make_sampler(*sampler),
            blockjit=use_blockjit,
        )
        return vm, vm.run()
    finally:
        flags.TRACEFAST = old


def test_static_image_parity_four_ways():
    program = hot_helper_program(calls=80, inner=30)
    tracefast_folded = _digest(
        *_run_image(program, install=True, tf=True, costs=CostModel())
    )
    tracefast_plainchain = _digest(*_run_image(program, install=True, tf=True))
    classic = _digest(*_run_image(program, install=True, tf=False))
    plain_jit = _digest(*_run_image(program, install=False, tf=True))
    interp = _digest(
        *_run_image(program, install=False, tf=True, use_blockjit=False)
    )
    assert (tracefast_folded == tracefast_plainchain == classic
            == plain_jit == interp)


def test_fuel_exhaustion_parity():
    from repro.errors import FuelExhaustedError

    program = hot_helper_program(calls=80, inner=30)
    seen = []
    for tf in (True, False):
        old = flags.TRACEFAST
        flags.TRACEFAST = tf
        try:
            code = _pep_image(program)
            cm = code["helper"]
            install_superblock(cm, _installable_path(cm), CostModel())
            vm = VirtualMachine(
                code, program.main, costs=CostModel(), blockjit=True
            )
            with pytest.raises(FuelExhaustedError) as info:
                vm.run(fuel=3000)
        finally:
            flags.TRACEFAST = old
        err = info.value
        seen.append(
            (str(err), err.method, err.block, err.instruction_index,
             err.cycles)
        )
    assert seen[0] == seen[1]


# -- adaptive formation: engagement, kill switch, faults ---------------------


def test_adaptive_tracefast_actually_engages():
    system, vm, _ = _tf_run(hot_helper_program(), tf=True)
    assert system.superblock_log, "no trace formed — test is vacuous"
    name, _, _ = system.superblock_log[0]
    assert name == "helper"
    cm = system.code["helper"]
    assert cm.sb_entry is not None
    assert "def _m(" in cm.sb_source


def test_kill_switch_reverts_to_pr5_backend_byte_identically():
    program = hot_helper_program()
    on_sys, on_vm, on_res = _tf_run(program, tf=True)
    off_sys, off_vm, off_res = _tf_run(program, tf=False)
    assert on_sys.superblock_log and off_sys.superblock_log
    assert "def _m(" in on_sys.code["helper"].sb_source
    assert "def _sb(" in off_sys.code["helper"].sb_source  # classic §11
    assert _digest(on_vm, on_res) == _digest(off_vm, off_res)


def test_tracefast_compile_fault_degrades_to_plain_blockjit():
    program = hot_helper_program()
    plan = FaultPlan({"tracefast-compile": 1.0}, seed=11)
    res_mgr = ResilienceManager(plan=plan)
    system, vm, result = _tf_run(program, tf=True, resilience=res_mgr)
    assert not system.superblock_log
    # The *trace* promotion degraded; the warm token ladder is a
    # separate tier with its own fault site and may still install
    # (bit-identical by construction, wall clock only).
    assert system.code["helper"].sb_path in (None, tracefast.WARM_PATH)
    degradations = [
        (policy, detail)
        for policy, detail in res_mgr.health.degradations
        if policy == "tracefast-degrade"
    ]
    assert degradations
    # Degrading to plain blockjit is bit-identical to formation simply
    # being off: an unconfigured site never advances any RNG.
    base_sys, base_vm, base_result = _tf_run(
        program, tf=True, superblock=False,
        resilience=ResilienceManager(),
    )
    assert _digest(vm, result) == _digest(base_vm, base_result)


def test_tracefast_fault_plan_is_inert_when_disabled():
    # REPRO_TRACEFAST=0 must revert to PR-5 behavior even under a
    # tracefast-compile plan: the site is never consulted, so the
    # classic superblock still forms and the digests match a plan-free
    # classic run.
    program = hot_helper_program()
    plan = FaultPlan({"tracefast-compile": 1.0}, seed=11)
    faulted_sys, faulted_vm, faulted_res = _tf_run(
        program, tf=False, resilience=ResilienceManager(plan=plan)
    )
    assert faulted_sys.superblock_log  # classic formation untouched
    clean_sys, clean_vm, clean_res = _tf_run(
        program, tf=False, resilience=ResilienceManager()
    )
    assert _digest(faulted_vm, faulted_res) == _digest(clean_vm, clean_res)


def test_other_fault_sites_are_bit_identical_across_backends():
    program = hot_helper_program()
    plan = {"sample": 0.2, "path-table": 0.1}
    digests = []
    for tf in (True, False):
        _, vm, result = _tf_run(
            program, tf=tf,
            resilience=ResilienceManager(plan=FaultPlan(plan, seed=5)),
        )
        digests.append(_digest(vm, result))
    assert digests[0] == digests[1]


# -- persistence (codecache format 5) ----------------------------------------


def _engaged_cm():
    code = _pep_image(hot_helper_program())
    cm = code["helper"]
    assert install_superblock(cm, _installable_path(cm), CostModel())
    assert "def _m(" in cm.sb_source
    return cm


def test_pickled_tracefast_revives_through_ensure_jit(monkeypatch):
    monkeypatch.setattr(flags, "SUPERBLOCK", True)
    cm = _engaged_cm()
    clone = pickle.loads(pickle.dumps(cm))
    # Callables never pickle; source + path + fingerprint ride along.
    assert clone.sb_entry is None
    assert clone.jit_entries is None
    assert clone.sb_source == cm.sb_source
    assert clone.sb_fingerprint == cm.sb_fingerprint
    entries = blockjit.ensure_jit(clone)
    assert clone.sb_entry is not None
    head = trace_blocks(clone, clone.sb_path)[0].label
    assert entries[(head, 0)] is clone.sb_entry


def test_flag_flip_invalidates_persisted_artifact(monkeypatch):
    # The fingerprint hashes the resolved tracefast flag, so a source
    # generated by one backend can never be exec'd by the other: the
    # flipped process drops the artefact wholesale and reforms its own.
    monkeypatch.setattr(flags, "SUPERBLOCK", True)
    cm = _engaged_cm()
    clone = pickle.loads(pickle.dumps(cm))
    flags.TRACEFAST = False
    entries = blockjit.ensure_jit(clone)
    assert clone.sb_entry is None
    assert clone.sb_source is None
    assert clone.sb_path is None
    head = next(iter(clone.blocks))
    assert (head, 0) in entries  # plain entries still work


def test_pickle_roundtrip_run_parity():
    from repro.sampling.arnold_grove import make_sampler

    program = hot_helper_program(calls=80, inner=30)
    runs = []
    for roundtrip in (False, True):
        code = _pep_image(program)
        cm = code["helper"]
        install_superblock(cm, _installable_path(cm), CostModel())
        if roundtrip:
            code = {
                name: pickle.loads(pickle.dumps(m))
                for name, m in code.items()
            }
        vm = VirtualMachine(
            code, program.main, costs=CostModel(), tick_interval=500.0,
            sampler=make_sampler(8, 3), blockjit=True,
        )
        runs.append(_digest(vm, vm.run()))
    assert runs[0] == runs[1]


# -- AOT tier ----------------------------------------------------------------


def test_aot_gating_never_raises():
    from repro.vm import aot

    # In a container without the Cython toolchain this is simply False;
    # either way the probe must be safe to call repeatedly.
    available = aot.aot_available()
    assert isinstance(available, bool)
    assert aot.aot_available() == available  # memoised, stable


def test_aot_fallback_digest_parity(monkeypatch):
    # AOT on (whether or not the toolchain exists — load_functions
    # returns None on any failure) and AOT forced off must agree.
    program = hot_helper_program(calls=80, inner=30)
    digests = []
    for aot_on in (True, False):
        monkeypatch.setattr(flags, "TRACEFAST_AOT", aot_on)
        digests.append(
            _digest(*_run_image(program, install=True, tf=True,
                                costs=CostModel()))
        )
    assert digests[0] == digests[1]


def test_aot_load_is_none_without_toolchain(monkeypatch):
    from repro.vm import aot

    if aot.aot_available():  # pragma: no cover - toolchain-dependent
        pytest.skip("AOT toolchain present; fallback path not reachable")
    cm, _, trace = _traced_cm()
    source = generate_method_source(cm, trace)
    assert aot.load_functions(cm, source) is None


# -- whole-suite parity (all bundled workloads) ---------------------------


def _workload_checksum(workload: str, tf: bool) -> str:
    import repro.api as api

    suite = {w.name: w for w in benchmark_suite()}
    old_tf, old_sb = flags.TRACEFAST, flags.SUPERBLOCK
    flags.TRACEFAST, flags.SUPERBLOCK = tf, True
    try:
        program = suite[workload].build(0.3)
        report = api.profile_adaptive(
            program, samples=16, stride=3, ticks=100
        )
    finally:
        flags.TRACEFAST, flags.SUPERBLOCK = old_tf, old_sb
    return payload_checksum(
        {
            "paths": sorted(report.paths.items()),
            "edges": sorted((repr(b), c) for b, c in report.edges.items()),
            "output": list(report.result.output),
            "return_value": report.result.return_value,
            "cycles": report.result.cycles,
            "recompilations": report.result.recompilations,
            "compile_cycles": report.result.compile_cycles,
            "health": report.health.to_dict(),
        }
    )


@pytest.mark.parametrize("workload", ALL_WORKLOADS)
def test_workload_digest_parity(workload):
    on = _workload_checksum(workload, tf=True)
    off = _workload_checksum(workload, tf=False)
    assert on == off
