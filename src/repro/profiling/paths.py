"""Path profiles: per-method frequency tables keyed by path number.

PEP's yieldpoint handler increments the frequency of the sampled path
number (paper section 3.3); the full-instrumentation configurations update
the same structure at every path end.  Path numbers are only meaningful
together with the method's P-DAG, which the compiled-code registry keeps.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple


class PathProfile:
    """Nested counters: method name -> path number -> frequency."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, Dict[int, float]] = {}

    def record(self, method: str, path_number: int, count: float = 1.0) -> None:
        table = self._counts.get(method)
        if table is None:
            table = {}
            self._counts[method] = table
        table[path_number] = table.get(path_number, 0.0) + count

    def frequency(self, method: str, path_number: int) -> float:
        return self._counts.get(method, {}).get(path_number, 0.0)

    def method_paths(self, method: str) -> Dict[int, float]:
        return dict(self._counts.get(method, {}))

    def methods(self) -> Iterator[str]:
        return iter(self._counts)

    def items(self) -> Iterator[Tuple[str, int, float]]:
        for method, table in self._counts.items():
            for path_number, freq in table.items():
                yield method, path_number, freq

    def total_samples(self) -> float:
        return sum(
            freq for table in self._counts.values() for freq in table.values()
        )

    def distinct_paths(self) -> int:
        return sum(len(table) for table in self._counts.values())

    def merge(self, other: "PathProfile") -> None:
        for method, path_number, freq in other.items():
            self.record(method, path_number, freq)

    def copy(self) -> "PathProfile":
        clone = PathProfile()
        for method, table in self._counts.items():
            clone._counts[method] = dict(table)
        return clone

    def clear(self) -> None:
        self._counts.clear()

    def top_paths(self, limit: int) -> List[Tuple[str, int, float]]:
        """The globally hottest paths by raw frequency (debug/report aid)."""
        ranked = sorted(self.items(), key=lambda item: -item[2])
        return ranked[:limit]

    def __len__(self) -> int:
        return self.distinct_paths()

    def __repr__(self) -> str:
        return (
            f"<PathProfile {len(self._counts)} methods, "
            f"{self.distinct_paths()} paths>"
        )
