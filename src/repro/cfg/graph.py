"""Label-level control-flow graph extracted from a method.

The CFG is a read-only view over a :class:`~repro.bytecode.method.Method`:
nodes are block labels, edges come from terminators.  Analyses (dominators,
loops) and the DAG builders all consume this view rather than the method
itself, so they stay decoupled from instruction details.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.bytecode.method import Method
from repro.errors import CFGError


class CFG:
    """Successor/predecessor maps over a method's reachable blocks."""

    __slots__ = ("entry", "labels", "succs", "preds", "method_name")

    def __init__(
        self,
        entry: str,
        labels: List[str],
        succs: Dict[str, Tuple[str, ...]],
        method_name: str = "?",
    ) -> None:
        self.entry = entry
        self.labels = labels
        self.succs = succs
        self.method_name = method_name
        self.preds: Dict[str, List[str]] = {label: [] for label in labels}
        for src, targets in succs.items():
            for dst in targets:
                if dst not in self.preds:
                    raise CFGError(
                        f"{method_name}: edge {src}->{dst} targets unknown block"
                    )
                self.preds[dst].append(src)

    @classmethod
    def from_method(cls, method: Method) -> "CFG":
        """Build the CFG of ``method``'s reachable blocks."""
        if method.entry is None:
            raise CFGError(f"{method.name}: method has no blocks")
        reachable: List[str] = []
        seen = set()
        stack = [method.entry]
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            reachable.append(label)
            block = method.block(label)
            for target in reversed(block.successors()):
                if target not in seen:
                    stack.append(target)
        # Keep method block order for determinism, restricted to reachable.
        ordered = [label for label in method.blocks if label in seen]
        succs = {
            label: method.block(label).successors() for label in ordered
        }
        return cls(method.entry, ordered, succs, method_name=method.name)

    def edges(self) -> Iterator[Tuple[str, str]]:
        for src in self.labels:
            for dst in self.succs[src]:
                yield src, dst

    def edge_count(self) -> int:
        return sum(len(self.succs[label]) for label in self.labels)

    def reverse_postorder(self) -> List[str]:
        """Reverse postorder from entry (the order dominator solvers want)."""
        visited = set()
        postorder: List[str] = []

        # Iterative DFS with an explicit stack of (label, child-iterator).
        stack: List[Tuple[str, Iterator[str]]] = []
        visited.add(self.entry)
        stack.append((self.entry, iter(self.succs[self.entry])))
        while stack:
            label, children = stack[-1]
            advanced = False
            for child in children:
                if child not in visited:
                    visited.add(child)
                    stack.append((child, iter(self.succs[child])))
                    advanced = True
                    break
            if not advanced:
                postorder.append(label)
                stack.pop()
        postorder.reverse()
        return postorder

    def __contains__(self, label: str) -> bool:
        return label in self.succs

    def __repr__(self) -> str:
        return (
            f"<CFG {self.method_name}: {len(self.labels)} blocks, "
            f"{self.edge_count()} edges>"
        )
