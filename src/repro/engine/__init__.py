"""The parallel experiment engine.

Every figure in the paper is an embarrassingly parallel sweep over
(configuration x workload x trial) cells; this package dispatches those
cells to *supervised* long-lived worker processes with deterministic
per-cell seeding, per-cell timeout + retry + crash recovery, journaled
receipts for crash-safe resume, and an ordered result merge, so a
sweep's output is byte-identical to the serial run that the rest of the
harness performs — even when workers are killed mid-cell or the sweep
itself is interrupted and resumed (DESIGN.md section 12).
"""

from repro.engine.cells import (
    CellResult,
    CellSpec,
    cell_seed,
    make_sweep_cells,
    run_cell,
)
from repro.engine.journal import SweepJournal, sweep_fingerprint
from repro.engine.pool import ExperimentPool
from repro.engine.supervisor import SweepSupervisor, run_cell_budgeted

__all__ = [
    "CellResult",
    "CellSpec",
    "ExperimentPool",
    "SweepJournal",
    "SweepSupervisor",
    "cell_seed",
    "make_sweep_cells",
    "run_cell",
    "run_cell_budgeted",
    "sweep_fingerprint",
]
