"""Experiment harness: the primitives the benches assemble figures from.

* :mod:`repro.harness.experiment` — per-workload preparation (advice
  recording, Base measurement, tick-interval calibration) and the
  configuration space (Base, instrumentation-only, PEP(S,K), perfect
  profiling, ablations);
* :mod:`repro.harness.accuracy` — perfect/estimated profile collection
  and the paper's accuracy computations;
* :mod:`repro.harness.report` — figure-shaped text rendering.
"""

from repro.harness.experiment import (
    BENCH_SCALE_ENV,
    ExperimentContext,
    RunConfig,
    default_scale,
    pep_config,
    prepare,
    run_config,
)
from repro.harness.accuracy import (
    collect_pep_profiles,
    collect_perfect_profiles,
    derive_edge_profile,
    edge_accuracy,
    path_accuracy,
)
from repro.harness.report import render_accuracy_figure, render_overhead_figure

__all__ = [
    "BENCH_SCALE_ENV",
    "ExperimentContext",
    "RunConfig",
    "default_scale",
    "pep_config",
    "prepare",
    "run_config",
    "collect_pep_profiles",
    "collect_perfect_profiles",
    "derive_edge_profile",
    "edge_accuracy",
    "path_accuracy",
    "render_accuracy_figure",
    "render_overhead_figure",
]
