"""Optimizer passes used by the optimizing compiler.

These are deliberately modest versions of the real passes — enough to
produce the phenomena the paper depends on:

* *inlining* splices small leaf callees into the caller, so several IR
  branches map to one bytecode branch (section 4.3), and propagates the
  uninterruptible-callee yieldpoint restriction;
* *constant folding* can eliminate a bytecode branch entirely, the case
  where PEP legitimately collects no profile for it;
* *branch layout* chooses each branch's fall-through arm from the edge
  profile's bias; the cost model charges a penalty when the executed arm
  is not the laid-out one, which is how profile accuracy affects
  performance (section 6.5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bytecode.instructions import (
    Br,
    Const,
    Instr,
    Jmp,
    Move,
    Ret,
    defined_register,
    used_registers,
)
from repro.bytecode.method import BasicBlock, Method, Program
from repro.errors import CompilationError
from repro.profiling.edges import EdgeProfile


# --------------------------------------------------------------------------
# Inlining.
# --------------------------------------------------------------------------


def inline_small_methods(
    method: Method,
    program: Program,
    max_callee_size: int = 30,
    max_caller_size: int = 400,
    max_inlines: int = 24,
) -> int:
    """Inline small leaf callees into ``method`` in place; returns count."""
    inlined = 0
    while inlined < max_inlines:
        if method.instruction_count() >= max_caller_size:
            break
        site = _find_inline_site(method, program, max_callee_size)
        if site is None:
            break
        _inline_at(method, program, *site)
        inlined += 1
    return inlined


def _find_inline_site(
    method: Method, program: Program, max_size: int
) -> Optional[Tuple[str, int]]:
    for label, block in method.blocks.items():
        for index, instr in enumerate(block.instrs):
            if instr.op != "call":
                continue
            callee = program.methods.get(instr.callee)
            if callee is None or callee.name == method.name:
                continue
            if callee.instruction_count() > max_size:
                continue
            if _calls_out(callee):
                continue  # leaf-only inlining: no recursion concerns
            return label, index
    return None


def _calls_out(method: Method) -> bool:
    for block in method.iter_blocks():
        for instr in block.instrs:
            if instr.op == "call":
                return True
    return False


def _inline_at(method: Method, program: Program, label: str, index: int) -> None:
    block = method.block(label)
    call = block.instrs[index]
    callee = program.methods[call.callee]

    offset = method.num_regs
    method.num_regs += callee.num_regs
    stamp = f"{callee.name}.in{len(method.blocks)}"
    label_map = {old: f"{stamp}.{old}" for old in callee.blocks}
    return_label = f"{stamp}.ret"

    # Clone and remap callee blocks.
    for old_label, callee_block in callee.blocks.items():
        clone = callee_block.clone(label_map[old_label])
        for instr in clone.instrs:
            _shift_registers(instr, offset)
        term = clone.terminator
        if isinstance(term, Ret):
            tail: List[Instr] = []
            if call.dst is not None:
                if term.src is not None:
                    tail.append(Move(call.dst, term.src + offset))
                else:
                    tail.append(Const(call.dst, 0))
            clone.instrs.extend(tail)
            clone.terminator = Jmp(return_label)
        else:
            _shift_term_registers(term, offset)
            term.retarget(label_map)
        method.add_block(clone)
        if callee.uninterruptible:
            method.no_yield_labels.add(clone.label)

    # Split the caller block around the call site.
    post = BasicBlock(return_label, block.instrs[index + 1 :], block.terminator)
    method.add_block(post)
    if callee.uninterruptible and return_label in method.no_yield_labels:
        method.no_yield_labels.discard(return_label)

    new_instrs: List[Instr] = block.instrs[:index]
    for param_index, arg_reg in enumerate(call.args):
        new_instrs.append(Move(offset + param_index, arg_reg))
    block.instrs = new_instrs
    if callee.entry is None:
        raise CompilationError(f"cannot inline empty method {callee.name!r}")
    block.terminator = Jmp(label_map[callee.entry])


def _shift_registers(instr: Instr, offset: int) -> None:
    op = instr.op
    if op in ("const",):
        instr.dst += offset
    elif op in ("move", "unary"):
        instr.dst += offset
        instr.src += offset
    elif op == "binop":
        instr.dst += offset
        instr.a += offset
        instr.b += offset
    elif op == "binop_imm":
        instr.dst += offset
        instr.a += offset
    elif op == "newarr":
        instr.dst += offset
        instr.size += offset
    elif op == "aload":
        instr.dst += offset
        instr.arr += offset
        instr.idx += offset
    elif op == "astore":
        instr.arr += offset
        instr.idx += offset
        instr.src += offset
    elif op == "alen":
        instr.dst += offset
        instr.arr += offset
    elif op == "call":
        if instr.dst is not None:
            instr.dst += offset
        instr.args = tuple(a + offset for a in instr.args)
    elif op == "emit":
        instr.src += offset
    # Instrumentation ops carry no guest registers.


def _shift_term_registers(term, offset: int) -> None:
    if isinstance(term, Br):
        term.a += offset
        term.b += offset


# --------------------------------------------------------------------------
# Constant folding and branch elimination.
# --------------------------------------------------------------------------


def _fold_binop(kind: str, a: int, b: int) -> Optional[int]:
    """Pure fold; returns None when the operation would trap at run time."""
    if kind == "add":
        return a + b
    if kind == "sub":
        return a - b
    if kind == "mul":
        return a * b
    if kind == "div":
        return a // b if b != 0 else None
    if kind == "mod":
        return a % b if b != 0 else None
    if kind == "and":
        return a & b
    if kind == "or":
        return a | b
    if kind == "xor":
        return a ^ b
    if kind == "shl":
        return a << b if 0 <= b <= 63 else None
    if kind == "shr":
        return a >> b if 0 <= b <= 63 else None
    if kind == "min":
        return min(a, b)
    if kind == "max":
        return max(a, b)
    comparisons = {
        "lt": a < b,
        "le": a <= b,
        "gt": a > b,
        "ge": a >= b,
        "eq": a == b,
        "ne": a != b,
    }
    return 1 if comparisons[kind] else 0


def fold_constants(method: Method) -> int:
    """Block-local constant folding; returns eliminated branch count.

    Constants are tracked within each block only (no dataflow join), which
    is enough to fold the literal-condition branches front ends emit.  A
    branch whose outcome folds becomes a jump — the "compiler eliminated a
    bytecode branch" case of section 4.3.
    """
    eliminated = 0
    for block in method.iter_blocks():
        known: Dict[int, int] = {}
        for instr in block.instrs:
            op = instr.op
            if op == "const":
                known[instr.dst] = instr.value
            elif op == "move" and instr.src in known:
                known[instr.dst] = known[instr.src]
            elif op == "binop" and instr.a in known and instr.b in known:
                value = _fold_binop(instr.kind, known[instr.a], known[instr.b])
                if value is not None:
                    known[instr.dst] = value
                else:
                    known.pop(instr.dst, None)
            elif op == "binop_imm" and instr.a in known:
                value = _fold_binop(instr.kind, known[instr.a], instr.imm)
                if value is not None:
                    known[instr.dst] = value
                else:
                    known.pop(instr.dst, None)
            else:
                dst = defined_register(instr)
                if dst is not None:
                    known.pop(dst, None)
        term = block.terminator
        if isinstance(term, Br) and term.a in known and term.b in known:
            outcome = _fold_binop(term.kind, known[term.a], known[term.b])
            assert outcome is not None  # comparisons never trap
            target = term.then_label if outcome else term.else_label
            block.terminator = Jmp(target)
            eliminated += 1
    if eliminated:
        method.remove_unreachable_blocks()
    return eliminated


def eliminate_dead_code(method: Method, max_rounds: int = 4) -> int:
    """Remove pure instructions whose results are never read."""
    removable_ops = ("const", "move", "unary")
    safe_binop_kinds = frozenset(
        {"add", "sub", "mul", "and", "or", "xor", "min", "max",
         "lt", "le", "gt", "ge", "eq", "ne"}
    )
    removed_total = 0
    for _ in range(max_rounds):
        used = set()
        for block in method.iter_blocks():
            for instr in block.instrs:
                used.update(used_registers(instr))
            term = block.terminator
            if isinstance(term, Br):
                used.add(term.a)
                used.add(term.b)
            elif isinstance(term, Ret) and term.src is not None:
                used.add(term.src)
        removed = 0
        for block in method.iter_blocks():
            kept: List[Instr] = []
            for instr in block.instrs:
                dst = defined_register(instr)
                dead = (
                    dst is not None
                    and dst not in used
                    and (
                        instr.op in removable_ops
                        or (
                            instr.op in ("binop", "binop_imm")
                            and instr.kind in safe_binop_kinds
                        )
                    )
                )
                if dead:
                    removed += 1
                else:
                    kept.append(instr)
            block.instrs = kept
        removed_total += removed
        if removed == 0:
            break
    return removed_total


# --------------------------------------------------------------------------
# Profile-guided branch layout.
# --------------------------------------------------------------------------


def apply_branch_layout(
    method: Method, profile: Optional[EdgeProfile]
) -> int:
    """Choose each branch's fall-through arm from the profiled bias.

    Returns the number of branches laid out against the default ('else'
    chosen as fall-through).  Without a profile the compiler assumes
    'then' — the static default front ends bias toward.
    """
    flipped = 0
    for _, term in method.iter_branches():
        if profile is not None and term.origin is not None:
            bias = profile.bias(term.origin, default=0.5)
            layout = "then" if bias >= 0.5 else "else"
        else:
            layout = "then"
        if layout != term.layout:
            flipped += 1
        term.layout = layout
    return flipped
