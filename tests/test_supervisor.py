"""The crash-safe supervised sweep engine (DESIGN.md section 12).

Three load-bearing properties:

1. **Supervision**: a worker that dies (SIGKILL) or exceeds its
   per-cell wall budget is detected, killed, and respawned; the
   in-flight cell retries with deterministic backoff and is quarantined
   after killing its worker twice — and none of this changes a single
   byte of the sweep's output.
2. **Journaled resume**: every completed cell appends a checksummed
   receipt; an interrupted sweep resumed from its journal re-runs only
   un-journaled cells and merges to digests byte-identical to an
   uninterrupted sweep.  Corrupt lines (torn tail writes, injected
   receipt-write faults) are dropped and re-run, never trusted.
3. **Deterministic engine faults**: the worker-crash / worker-hang /
   receipt-write / cache-merge schedule is a pure function of the fault
   plan and the cell list — independent of worker scheduling — so chaos
   runs are replayable in CI.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.engine import (
    ExperimentPool,
    SweepJournal,
    make_sweep_cells,
    run_cell_budgeted,
    sweep_fingerprint,
)
from repro.engine.cells import CellResult
from repro.errors import (
    CellExecutionError,
    CellQuarantinedError,
    CellTimeoutError,
    JournalError,
    WorkerCrashError,
)
from repro.harness.experiment import BASE, config_to_spec, pep_config
from repro.resilience import FaultPlan, plan_site_faults
from repro.resilience.health import SweepHealth

_SPECS = [config_to_spec(BASE), config_to_spec(pep_config(64, 17))]
_SCALE = 1.0
# Fast backoff so crash-retry tests don't sleep their way through CI.
_BACKOFF = 0.01


def _cells(workloads=("compress", "db"), specs=_SPECS, **kwargs):
    return make_sweep_cells(list(workloads), specs, scale=_SCALE, **kwargs)


def _digests(results):
    return [r.metrics["digest"] for r in results]


@pytest.fixture(scope="module")
def serial_reference():
    """Digests of a clean, serial, unfaulted sweep of the standard cells."""
    cells = _cells()
    return _digests(ExperimentPool(jobs=1, strict=True).run(cells))


# -- fault planning determinism ---------------------------------------------


def test_plan_site_faults_is_keyed_and_deterministic():
    plan = FaultPlan.parse(["worker-crash=0.5"], seed=7)
    keys = [f"{i}:1" for i in range(64)]
    first = plan_site_faults(plan, "worker-crash", keys)
    again = plan_site_faults(plan, "worker-crash", keys)
    assert first == again
    # Key order does not change per-key decisions (keyed, not streamed).
    shuffled = plan_site_faults(plan, "worker-crash", list(reversed(keys)))
    assert first == shuffled
    # p=0.5 over 64 keys fires a non-trivial, non-total subset.
    assert 0 < len(first) < 64
    # A different seed reshuffles the schedule.
    other = plan_site_faults(
        FaultPlan.parse(["worker-crash=0.5"], seed=8), "worker-crash", keys
    )
    assert first != other


def test_plan_site_faults_budget_truncates_in_key_order():
    plan = FaultPlan.parse(["worker-hang=1.0:3"], seed=0)
    keys = [f"{i}:1" for i in range(10)]
    fired = plan_site_faults(plan, "worker-hang", keys)
    assert fired == frozenset(keys[:3])


def test_plan_site_faults_empty_without_plan_or_site():
    assert plan_site_faults(None, "worker-crash", ["0:1"]) == frozenset()
    plan = FaultPlan.parse(["worker-crash=1.0"], seed=0)
    assert plan_site_faults(plan, "worker-hang", ["0:1"]) == frozenset()


def test_engine_sites_are_valid_fault_sites():
    # FaultSpec validates sites against FAULT_SITES; the engine sites
    # must parse through the same CLI grammar as the VM sites.
    plan = FaultPlan.parse(
        [
            "worker-crash=0.1",
            "worker-hang=0.2:1",
            "receipt-write=0.3",
            "cache-merge=1.0",
        ],
        seed=1,
    )
    assert set(plan.specs) == {
        "worker-crash",
        "worker-hang",
        "receipt-write",
        "cache-merge",
    }


# -- supervision: crash, hang, quarantine -----------------------------------


def test_sigkilled_workers_leave_digests_byte_identical(serial_reference):
    # Acceptance criterion: every cell SIGKILLs its first worker
    # mid-cell; the supervisor respawns and retries; the merged sweep is
    # byte-identical to the unfaulted serial sweep.
    cells = _cells()
    plan = FaultPlan.parse([f"worker-crash=1.0:{len(cells)}"], seed=3)
    pool = ExperimentPool(
        jobs=2, strict=True, fault_plan=plan, backoff_base=_BACKOFF
    )
    results = pool.run(cells)
    assert _digests(results) == serial_reference
    # Every cell took exactly one crash + one successful retry.
    assert [r.attempts for r in results] == [2] * len(cells)
    assert pool.health.worker_crashes == len(cells)
    assert pool.health.worker_restarts == len(cells)
    assert pool.health.backoff_waits == len(cells)
    assert pool.health.quarantined == []


def test_hung_worker_is_killed_and_cell_recovers(serial_reference):
    # Satellite: the slow-cell path.  One injected hang stalls the first
    # attempt past the per-cell budget; the supervisor kills the worker
    # and the retry produces the canonical bytes.
    cells = _cells()
    plan = FaultPlan.parse(["worker-hang=1.0:1"], seed=3)
    pool = ExperimentPool(
        jobs=2,
        strict=True,
        timeout=3.0,
        fault_plan=plan,
        backoff_base=_BACKOFF,
    )
    results = pool.run(cells)
    assert _digests(results) == serial_reference
    assert pool.health.worker_hangs == 1
    assert pool.health.worker_restarts == 1
    hung = [r for r in results if r.attempts == 2]
    assert len(hung) == 1  # exactly the faulted cell retried


def test_cell_that_kills_its_worker_twice_is_quarantined():
    cells = _cells(("compress",), [config_to_spec(BASE)])
    plan = FaultPlan.parse(["worker-crash=1.0"], seed=1)  # every attempt
    pool = ExperimentPool(
        jobs=2, retries=0, fault_plan=plan, backoff_base=_BACKOFF
    )
    (result,) = pool.run(cells)
    assert not result.ok
    assert result.error_type == WorkerCrashError.__name__
    assert "quarantined" in result.error
    assert pool.health.worker_crashes == 2
    assert pool.health.quarantined == [(0, result.error)]


def test_repeated_hangs_quarantine_with_timeout_error():
    cells = _cells(("compress",), [config_to_spec(BASE)])
    plan = FaultPlan.parse(["worker-hang=1.0"], seed=1)
    pool = ExperimentPool(
        jobs=2,
        retries=0,
        timeout=1.0,
        fault_plan=plan,
        backoff_base=_BACKOFF,
    )
    (result,) = pool.run(cells)
    assert not result.ok
    assert result.error_type == CellTimeoutError.__name__
    assert "quarantined" in result.error
    assert pool.health.worker_hangs == 2


def test_quarantine_raises_in_strict_mode():
    cells = _cells(("compress",), [config_to_spec(BASE)])
    plan = FaultPlan.parse(["worker-crash=1.0"], seed=1)
    pool = ExperimentPool(
        jobs=2, strict=True, fault_plan=plan, backoff_base=_BACKOFF
    )
    with pytest.raises(CellExecutionError) as info:
        pool.run(cells)
    assert "quarantined" in str(info.value)


def test_restart_budget_exhaustion_degrades_not_hangs():
    # Two cells crash every attempt; with a restart budget of 1 the
    # second loss cannot respawn, and remaining cells degrade to error
    # results instead of the sweep hanging or crashing.
    cells = _cells(("compress",), [config_to_spec(BASE)], trials=2)
    plan = FaultPlan.parse(["worker-crash=1.0"], seed=1)
    pool = ExperimentPool(
        jobs=2,
        retries=0,
        fault_plan=plan,
        max_worker_restarts=1,
        backoff_base=_BACKOFF,
    )
    results = pool.run(cells)
    assert len(results) == 2
    assert not any(r.ok for r in results)
    assert {r.error_type for r in results} <= {
        WorkerCrashError.__name__,
        CellQuarantinedError.__name__,
    }
    assert pool.health.worker_restarts <= 1


def test_backoff_is_deterministic_exponential():
    cells = _cells(("compress",), [config_to_spec(BASE)])
    plan = FaultPlan.parse(["worker-crash=1.0"], seed=1)
    pool = ExperimentPool(
        jobs=2, retries=0, fault_plan=plan, backoff_base=0.02
    )
    pool.run(cells)
    # Two kills before quarantine: delays 0.02 * 2**0, 0.02 * 2**1 —
    # wait, the second kill quarantines immediately, so exactly one
    # backoff wait is recorded, at the base delay.
    assert pool.health.backoff_waits == 1
    assert pool.health.backoff_seconds == pytest.approx(0.02)


def test_faulted_sweep_health_is_replayable():
    # Same plan + same cells -> identical SweepHealth (to_dict sorts the
    # chronological event log, so worker interleaving cannot leak in).
    # p=0.5 with no budget lets some cells crash twice and quarantine —
    # the quarantine schedule replays identically too.
    cells = _cells()
    plan = FaultPlan.parse(["worker-crash=0.5"], seed=11)
    healths = []
    for _ in range(2):
        pool = ExperimentPool(
            jobs=2, retries=0, fault_plan=plan, backoff_base=_BACKOFF
        )
        pool.run(cells)
        healths.append(pool.health)
    assert healths[0] == healths[1]


# -- budgeted in-parent retries ---------------------------------------------


def test_run_cell_budgeted_times_out_slow_cell():
    (slow,) = make_sweep_cells(
        ["compress"], [config_to_spec(BASE)], scale=12.0
    )
    metrics, error, error_type = run_cell_budgeted(slow, 0.1)
    assert metrics is None
    assert error_type == CellTimeoutError.__name__
    assert "wall-clock budget" in error


def test_run_cell_budgeted_passes_through_success_and_failure():
    (good,) = _cells(("compress",), [config_to_spec(BASE)])
    metrics, error, error_type = run_cell_budgeted(good, 60.0)
    assert metrics is not None and error is None and error_type is None
    bad = make_sweep_cells(
        ["compress"], [config_to_spec(BASE)], scale=_SCALE
    )[0]
    bad.workload = "no-such-workload"
    metrics, error, error_type = run_cell_budgeted(bad, 60.0)
    assert metrics is None
    assert error_type == "WorkloadError"


# -- the sweep journal -------------------------------------------------------


def _result_for(spec, metrics=None, error=None, error_type=None):
    return CellResult(
        index=spec.index,
        workload=spec.workload,
        config=str(spec.config_spec.get("name")),
        trial=spec.trial,
        metrics=metrics,
        error=error,
        error_type=error_type,
        attempts=1,
        duration=0.5,
    )


def test_fingerprint_distinguishes_sweeps():
    cells = _cells()
    assert sweep_fingerprint(cells) == sweep_fingerprint(cells)
    other_seed = _cells(master_seed=1)
    assert sweep_fingerprint(cells) != sweep_fingerprint(other_seed)
    subset = cells[:-1]
    assert sweep_fingerprint(cells) != sweep_fingerprint(subset)


def test_journal_roundtrip_and_corrupt_line_recovery(tmp_path):
    cells = _cells(("compress",), [config_to_spec(BASE)], trials=3)
    path = str(tmp_path / "sweep.jsonl")
    fingerprint = sweep_fingerprint(cells)
    journal = SweepJournal(path, fingerprint)
    journal.open()
    for spec in cells:
        journal.append_receipt(_result_for(spec, metrics={"digest": "d"}))
    journal.close()

    loaded, recoveries = SweepJournal.load(path, fingerprint)
    assert sorted(loaded) == [c.index for c in cells]
    assert recoveries == []

    # Flip one byte inside the middle receipt: checksum catches it, the
    # line is dropped as a recovery, the other receipts survive.
    lines = open(path).read().splitlines()
    lines[2] = lines[2].replace('"d"', '"X"', 1)
    open(path, "w").write("\n".join(lines) + "\n")
    loaded, recoveries = SweepJournal.load(path, fingerprint)
    assert len(loaded) == len(cells) - 1
    assert len(recoveries) == 1
    assert "checksum mismatch" in recoveries[0]


def test_journal_rejects_wrong_sweep(tmp_path):
    cells = _cells(("compress",), [config_to_spec(BASE)])
    path = str(tmp_path / "sweep.jsonl")
    journal = SweepJournal(path, sweep_fingerprint(cells))
    journal.open()
    journal.close()
    other = sweep_fingerprint(_cells(master_seed=9))
    with pytest.raises(JournalError, match="different sweep"):
        SweepJournal.load(path, other)
    appender = SweepJournal(path, other)
    with pytest.raises(JournalError, match="different sweep"):
        appender.open()


def test_journal_missing_file_is_empty():
    loaded, recoveries = SweepJournal.load("/no/such/journal.jsonl", "f")
    assert loaded == {} and recoveries == []


def test_torn_tail_line_is_dropped(tmp_path):
    cells = _cells(("compress",), [config_to_spec(BASE)], trials=2)
    path = str(tmp_path / "sweep.jsonl")
    fingerprint = sweep_fingerprint(cells)
    journal = SweepJournal(path, fingerprint)
    journal.open()
    for spec in cells:
        journal.append_receipt(_result_for(spec, metrics={"digest": "d"}))
    journal.close()
    # Simulate a crash mid-append: the final line is torn in half.
    text = open(path).read().splitlines()
    text[-1] = text[-1][: len(text[-1]) // 2]
    open(path, "w").write("\n".join(text) + "\n")
    loaded, recoveries = SweepJournal.load(path, fingerprint)
    assert sorted(loaded) == [cells[0].index]
    assert len(recoveries) == 1


# -- interrupted + resumed sweeps -------------------------------------------


def test_interrupted_sweep_resumes_to_identical_digests(
    tmp_path, serial_reference
):
    # Acceptance criterion: interrupt a journaled sweep (simulated by
    # tearing the journal's tail), resume it, and the merged digests are
    # byte-identical to an uninterrupted serial sweep.
    cells = _cells()
    path = str(tmp_path / "sweep.jsonl")
    ExperimentPool(jobs=1, strict=True).run(cells, resume_path=path)
    lines = open(path).read().splitlines()
    # Drop the last receipt entirely and tear the one before it.
    kept, torn = lines[:-2], lines[-2]
    open(path, "w").write("\n".join(kept) + "\n" + torn[:30] + "\n")

    pool = ExperimentPool(jobs=2, strict=True)
    resumed = pool.run(cells, resume_path=path)
    assert _digests(resumed) == serial_reference
    # Two cells re-ran (the dropped + the torn); the rest resumed.
    assert pool.health.resumed_cells == len(cells) - 2
    assert len(pool.health.journal_recoveries) == 1


def test_fully_journaled_sweep_reruns_nothing(tmp_path, serial_reference):
    cells = _cells()
    path = str(tmp_path / "sweep.jsonl")
    ExperimentPool(jobs=1, strict=True).run(cells, resume_path=path)
    before = os.path.getsize(path)
    pool = ExperimentPool(jobs=2, strict=True)
    results = pool.run(cells, resume_path=path)
    assert _digests(results) == serial_reference
    assert pool.health.resumed_cells == len(cells)
    # Nothing re-ran, so nothing was appended.
    assert os.path.getsize(path) == before


def test_resume_refuses_a_different_sweeps_journal(tmp_path):
    cells = _cells(("compress",), [config_to_spec(BASE)])
    path = str(tmp_path / "sweep.jsonl")
    ExperimentPool(jobs=1, strict=True).run(cells, resume_path=path)
    other = _cells(("db",), [config_to_spec(BASE)])
    with pytest.raises(JournalError, match="different sweep"):
        ExperimentPool(jobs=1, strict=True).run(other, resume_path=path)


def test_receipt_write_fault_degrades_and_resume_heals(tmp_path):
    # The receipt-write site tears exactly one receipt; the sweep still
    # returns every result, and a resume re-runs only that cell.
    cells = _cells()
    path = str(tmp_path / "sweep.jsonl")
    plan = FaultPlan.parse(["receipt-write=1.0:1"], seed=2)
    pool = ExperimentPool(jobs=1, strict=True, fault_plan=plan)
    results = pool.run(cells, resume_path=path)
    assert all(r.ok for r in results)
    assert len(pool.health.receipt_failures) == 1

    clean = ExperimentPool(jobs=1, strict=True)
    resumed = clean.run(cells, resume_path=path)
    assert _digests(resumed) == _digests(results)
    assert clean.health.resumed_cells == len(cells) - 1
    assert len(clean.health.journal_recoveries) == 1


def test_cache_merge_fault_drops_worker_entries(tmp_path):
    from repro.vm import codecache

    if codecache.active_cache() is None:
        pytest.skip("compilation cache disabled in this environment")
    cells = _cells(("compress", "db"), [config_to_spec(BASE)])
    plan = FaultPlan.parse(["cache-merge=1.0"], seed=2)
    pool = ExperimentPool(
        jobs=2,
        strict=True,
        fault_plan=plan,
        persist_path=str(tmp_path / "cache.pkl"),
    )
    results = pool.run(cells)
    assert all(r.ok for r in results)
    # Every worker's shutdown shipment was dropped; correctness holds,
    # only warmth is lost.
    assert pool.health.cache_merges_dropped >= 1


# -- sweep health aggregation ------------------------------------------------


def test_sweep_health_absorbs_cell_reports():
    health = SweepHealth()
    health.absorb_cell_health(
        {
            "faults": {"opt-compile": 2},
            "degradations": [["compile-blacklist", "m"]],
            "warnings": ["w"],
        }
    )
    health.absorb_cell_health({"faults": {"opt-compile": 1, "sample": 3}})
    health.absorb_cell_health(None)
    assert health.cell_faults == {"opt-compile": 3, "sample": 3}
    assert health.cell_degradations == 1
    assert health.cell_warnings == 1


def test_sweep_health_to_dict_is_json_clean_and_comparable():
    health = SweepHealth()
    health.cells_total = 4
    health.record_crash(0, 1)
    health.record_backoff(0, 0.05)
    health.record_restart()
    health.record_quarantine(1, "boom")
    payload = health.to_dict()
    json.dumps(payload)  # JSON-clean
    clone = SweepHealth()
    clone.cells_total = 4
    # Same events in a different arrival order compare equal.
    clone.record_quarantine(1, "boom")
    clone.record_restart()
    clone.record_backoff(0, 0.05)
    clone.record_crash(0, 1)
    assert health == clone
    assert "restarts" in health.summary()
