"""k-iteration path profiling and multi-iteration traces (DESIGN.md §16).

k-BLPP (arXiv 1304.5197) numbers paths across ``k`` consecutive loop
iterations by unrolling the P-DAG.  This suite pins the numbering
against brute-force enumeration of the k-DAG, the window arithmetic
round trip, the shadow table's dense/demote storage, the controller's
promotion fallback, and the full lifecycle of a promoted k-trace —
install, side exits, pickle revival, stale fingerprints on a ``k``
change.  Like every trace tier before it, k-BLPP must not move a single
bit: digests are compared with ``REPRO_KBLPP`` on and off across all
bundled workloads and under fault plans.
"""

from __future__ import annotations

import pickle

import pytest

from repro.cfg.dag import CARRY, DUMMY_ENTRY, DUMMY_EXIT
from repro.cfg.kdag import build_k_dag, split_klabel
from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.method import Program
from repro.persist import payload_checksum
from repro.profiling import kpaths
from repro.profiling.kpaths import (
    KPathSchema,
    clear_shared_schemas,
    shared_schema,
)
from repro.profiling.paths import DENSE_PATH_CAP, PathProfile
from repro.profiling.regenerate import reconstruct_path
from repro.resilience import FaultPlan, ResilienceManager
from repro.util import flags
from repro.vm import blockjit
from repro.vm.costs import CostModel
from repro.vm.runtime import VirtualMachine
from repro.vm.superblock import (
    decode_kpath,
    encode_kpath,
    find_dominant_kpath,
    install_superblock,
    is_kpath,
    superblock_fingerprint,
    trace_blocks,
)
from repro.workloads.suite import benchmark_suite

from tests.test_superblock import _adaptive_run, _digest, _pep_image

ALL_WORKLOADS = [w.name for w in benchmark_suite()]


@pytest.fixture(autouse=True)
def _isolate_codecache(monkeypatch):
    # Same isolation as test_superblock: the content-addressed compile
    # cache shares CompiledMethod instances across AdaptiveSystems, so a
    # trace installed by one test would leak into the next.
    monkeypatch.setenv("REPRO_CODECACHE", "0")


@pytest.fixture(autouse=True)
def _kblpp_on(monkeypatch):
    # Pin the feature on for every test in this file (the CI kill-switch
    # smoke exports REPRO_KBLPP=0 globally; these tests are about the
    # enabled tier unless they pin the flag themselves).  The tracefast
    # backend hosts the multi-iteration traces, so it is pinned too.
    monkeypatch.setattr(flags, "KBLPP", True)
    monkeypatch.setattr(flags, "TRACEFAST", True)


@pytest.fixture(autouse=True)
def _fresh_schemas():
    # Shared schemas are keyed by (method, DAG fingerprint, k) and the
    # tests below monkeypatch the size cap; never let one test's cached
    # verdict leak into the next.
    clear_shared_schemas()
    yield
    clear_shared_schemas()


def bimodal_program(calls: int = 200, inner: int = 4) -> Program:
    """main repeatedly calls a helper whose loop alternates two arms.

    Neither iteration 1-path can dominate (each holds ~half the mass),
    but one 2-iteration window does — the k-BLPP promotion shape.
    """
    pb = ProgramBuilder("kbimodal")
    helper = pb.function("helper", ["n"])
    n = helper.p("n")
    acc = helper.local(0)

    def body(i):
        def even():
            helper.assign(acc, acc + n)
            helper.assign(acc, acc + 1)
            helper.assign(acc, acc + i)
            helper.assign(acc, acc * 1)
            helper.assign(acc, acc + 2)

        def odd():
            helper.assign(acc, acc * 1)
            helper.assign(acc, acc + 2)
            helper.assign(acc, acc + i)
            helper.assign(acc, acc - 1)
            helper.assign(acc, acc + n)

        helper.if_((i % 2).eq(0), even, odd)

    helper.for_range(0, inner, 1, body)
    helper.ret(acc)

    f = pb.function("main")
    total = f.local(0)
    f.for_range(0, calls, 1,
                lambda i: f.assign(total, total + f.call("helper", i)))
    f.emit(total)
    f.ret(total)
    return pb.build()


def _helper_cm(program: Program = None):
    code = _pep_image(program or bimodal_program())
    return code, code["helper"]


# -- flag resolution ---------------------------------------------------------


def test_kblpp_flag_environment_resolution(monkeypatch):
    monkeypatch.setattr(flags, "KBLPP", None)
    monkeypatch.setenv(flags.KBLPP_ENV, "0")
    assert flags.kblpp_enabled() is False
    monkeypatch.setenv(flags.KBLPP_ENV, "1")
    assert flags.kblpp_enabled() is True
    monkeypatch.delenv(flags.KBLPP_ENV)
    assert flags.kblpp_enabled() is True  # default on


def test_kblpp_k_resolution_and_clamp(monkeypatch):
    monkeypatch.setattr(flags, "KBLPP_K", None)
    monkeypatch.delenv(flags.KBLPP_K_ENV, raising=False)
    assert flags.kblpp_k() == flags.KBLPP_K_DEFAULT == 2
    monkeypatch.setenv(flags.KBLPP_K_ENV, "3")
    assert flags.kblpp_k() == 3
    monkeypatch.setenv(flags.KBLPP_K_ENV, "99")
    assert flags.kblpp_k() == flags.KBLPP_K_MAX
    monkeypatch.setenv(flags.KBLPP_K_ENV, "0")
    assert flags.kblpp_k() == 1
    monkeypatch.setenv(flags.KBLPP_K_ENV, "nonsense")
    assert flags.kblpp_k() == flags.KBLPP_K_DEFAULT


def test_kpath_encoding_roundtrip():
    for knumber in (0, 1, 7, 10**6):
        encoded = encode_kpath(knumber)
        assert encoded <= -2
        assert is_kpath(encoded)
        assert decode_kpath(encoded) == knumber
    # The neighbouring sentinels stay distinct.
    assert not is_kpath(None)
    assert not is_kpath(-1)  # tracefast.WARM_PATH
    assert not is_kpath(0)


# -- k-DAG structure ---------------------------------------------------------


def test_kdag_unrolling_shape():
    _, cm = _helper_cm()
    kdag = build_k_dag(cm.dag, 2)
    kinds = {}
    for edge in kdag.edges:
        kinds.setdefault(edge.kind, []).append(edge)
    # Dummy entries exist only at slot 0.
    for edge in kinds[DUMMY_ENTRY]:
        assert split_klabel(edge.dst)[1] == 0
    # Every carry links a slot-i header top to the slot-(i+1) bottom of
    # the same header (the window-internal iteration boundary).
    assert kinds[CARRY], "k=2 unrolling must produce carry edges"
    split_map = cm.dag.split_map
    for edge in kinds[CARRY]:
        top, src_slot = split_klabel(edge.src)
        bottom, dst_slot = split_klabel(edge.dst)
        assert dst_slot == src_slot + 1
        assert split_map[top] == bottom
    # Dummy exits survive only at the final slot.
    for edge in kinds[DUMMY_EXIT]:
        assert split_klabel(edge.src)[1] == 2 - 1


# -- numbering truth table vs brute force ------------------------------------


@pytest.mark.parametrize("k", [1, 2, 3])
def test_knumbering_bijects_with_enumeration(k):
    _, cm = _helper_cm()
    schema = KPathSchema(cm.dag, k)
    paths = schema.kdag.enumerate_paths()
    numbers = sorted(sum(edge.value for edge in path) for path in paths)
    # Ball-Larus over the unrolled DAG: a bijection onto 0..N-1.
    assert numbers == list(range(schema.num_kpaths))
    if k == 1:
        # The k=1 space is structurally the 1-DAG's.
        assert schema.num_kpaths == cm.dag.num_paths


def _one_path_links(dag, path_number):
    edges = reconstruct_path(dag, path_number)
    first, last = edges[0], edges[-1]
    start = first.dst if first.kind == DUMMY_ENTRY else None
    end = last.src if last.kind == DUMMY_EXIT else None
    return start, end


def test_window_number_truth_table():
    """Every chainable 2-window maps to a distinct full-window k-number,
    and those numbers are exactly the k-DAG's full-window path space."""
    _, cm = _helper_cm()
    dag = cm.dag
    schema = KPathSchema(dag, 2)
    links = {p: _one_path_links(dag, p) for p in range(dag.num_paths)}
    split_map = dag.split_map
    chains = [
        (p, q)
        for p, (_, p_end) in links.items()
        if p_end is not None
        for q, (q_start, _) in links.items()
        if q_start is not None and split_map[p_end] == q_start
    ]
    assert chains, "the bimodal helper must have chainable windows"
    numbers = {}
    for chain in chains:
        number = schema.window_number(chain)
        assert number is not None, chain
        assert schema.split_window(number) == chain
        numbers[number] = chain
    assert len(numbers) == len(chains)  # injective
    # Surjective onto the full-window numbers: brute-force the k-DAG and
    # keep paths that span both slots.
    full = set()
    for kpath in schema.kdag.enumerate_paths():
        window = schema.split_window(sum(edge.value for edge in kpath))
        if window is not None and len(window) == 2:
            full.add(schema.window_number(window))
    assert set(numbers) == full


def test_window_number_rejects_broken_chains():
    _, cm = _helper_cm()
    dag = cm.dag
    schema = KPathSchema(dag, 2)
    links = {p: _one_path_links(dag, p) for p in range(dag.num_paths)}
    # A path ending in a ret (no dummy exit) cannot lead a window.
    ret_end = next(p for p, (_, end) in links.items() if end is None)
    any_path = next(iter(links))
    assert schema.window_number((ret_end, any_path)) is None
    # A method-entry path (no dummy entry) cannot follow one.
    entry_start = next(p for p, (start, _) in links.items() if start is None)
    loop_end = next(p for p, (_, end) in links.items() if end is not None)
    assert schema.window_number((loop_end, entry_start)) is None
    # Wrong arity and out-of-space numbers void the window.
    assert schema.window_number((any_path,)) is None
    assert schema.window_number((dag.num_paths + 7, any_path)) is None


@pytest.mark.parametrize("k", [2, 3])
def test_split_window_roundtrip_over_the_whole_space(k):
    _, cm = _helper_cm()
    schema = KPathSchema(cm.dag, k)
    full_windows = 0
    for number in range(schema.num_kpaths):
        window = schema.split_window(number)
        assert window is not None
        assert 1 <= len(window) <= k
        if len(window) == k:
            assert schema.window_number(window) == number
            full_windows += 1
    assert full_windows > 0
    assert schema.split_window(-1) is None
    assert schema.split_window(schema.num_kpaths) is None


# -- shared schema registry and table sizing ---------------------------------


def test_shared_schema_is_cached_per_dag_and_k():
    _, cm = _helper_cm()
    first = shared_schema(cm.dag, 2)
    assert first is not None
    assert shared_schema(cm.dag, 2) is first
    assert shared_schema(cm.dag, 3) is not first
    assert shared_schema(None, 2) is None


def test_shared_schema_caps_the_path_space(monkeypatch):
    _, cm = _helper_cm()
    monkeypatch.setattr(kpaths, "KBLPP_MAX_PATHS", 1)
    assert shared_schema(cm.dag, 2) is None
    # The infeasibility verdict is cached: raising the cap back does not
    # resurrect the schema until the registry is cleared.
    monkeypatch.setattr(kpaths, "KBLPP_MAX_PATHS", 1 << 20)
    assert shared_schema(cm.dag, 2) is None
    clear_shared_schemas()
    assert shared_schema(cm.dag, 2) is not None


def test_kpath_table_dense_then_demotes():
    # The shadow window table is an ordinary PathProfile, so it inherits
    # the §10 hybrid storage: dense array under the cap, demotion to the
    # sparse dict on any out-of-range number, value-identical either way.
    profile = PathProfile()
    profile.ensure_dense("m", 8)
    profile.record("m", 3)
    assert type(profile._counts["m"]) is not dict
    profile.record("m", 12)  # out of the registered space: demote
    assert type(profile._counts["m"]) is dict
    assert profile.method_paths("m") == {3: 1.0, 12: 1.0}


def test_kpath_table_oversized_space_stays_sparse():
    profile = PathProfile()
    profile.ensure_dense("m", DENSE_PATH_CAP + 1)
    profile.record("m", 5)
    assert type(profile._counts["m"]) is dict
    assert profile.frequency("m", 5) == 1.0


# -- dominance ---------------------------------------------------------------


def test_find_dominant_kpath_thresholds():
    counts = {4: 40.0, 9: 35.0, 2: 25.0}
    assert find_dominant_kpath(counts, 0.25, 8.0) == 4
    assert find_dominant_kpath(counts, 0.5, 8.0) is None
    assert find_dominant_kpath({4: 4.0}, 0.25, 8.0) is None  # < min samples
    assert find_dominant_kpath({}, 0.25, 1.0) is None


# -- sampler: shadow window table --------------------------------------------


def test_sampled_run_fills_the_shadow_table():
    from repro.sampling.arnold_grove import make_sampler

    program = bimodal_program()
    code, cm = _helper_cm(program)
    vm = VirtualMachine(
        code, program.main, costs=CostModel(),
        tick_interval=400.0, sampler=make_sampler(16, 3),
    )
    vm.run()
    key = cm.profile_key
    counts = vm.kpath_profile.method_paths(key)
    assert counts, "k-window samples must land in vm.kpath_profile"
    schema = shared_schema(cm.dag, 2)
    one_paths = vm.path_profile.method_paths(key)
    # Every recorded window is a real chain of sampled 1-paths.
    for number in counts:
        window = schema.split_window(number)
        assert window is not None and len(window) == 2
        assert set(window) <= set(one_paths)
    # The bimodal kernel: no dominant 1-path, a dominant window at the
    # rotation-corrected threshold (DESIGN.md §16).
    from repro.vm.superblock import find_dominant_path

    assert find_dominant_path(one_paths, 0.5, 8.0) is None
    assert find_dominant_kpath(counts, 0.25, 8.0) is not None


def test_kill_switch_empties_the_shadow_table(monkeypatch):
    from repro.sampling.arnold_grove import make_sampler

    monkeypatch.setattr(flags, "KBLPP", False)
    program = bimodal_program()
    code, cm = _helper_cm(program)
    vm = VirtualMachine(
        code, program.main, costs=CostModel(),
        tick_interval=400.0, sampler=make_sampler(16, 3),
    )
    vm.run()
    assert not vm.kpath_profile.method_paths(cm.profile_key)
    assert vm.path_profile.method_paths(cm.profile_key)  # 1-paths unaffected


# -- promotion lifecycle -----------------------------------------------------


def _kblpp_run(program, kblpp, resilience=None):
    # min_samples high enough that early small-sample noise cannot push
    # a ~37% 1-path over the 0.5 dominance bar — the promotions below
    # must come from the k-window table (40% >= the 0.25 k-threshold),
    # not a lucky 3-of-4 sample streak.
    old = flags.KBLPP
    flags.KBLPP = kblpp
    try:
        return _adaptive_run(
            program, superblock=True, resilience=resilience,
            min_samples=24.0,
        )
    finally:
        flags.KBLPP = old


def test_controller_promotes_a_kpath_and_digests_match():
    program = bimodal_program()
    sys_on, vm_on, res_on = _kblpp_run(program, True)
    sys_off, vm_off, res_off = _kblpp_run(program, False)
    # The k-trace fired on the bimodal helper...
    kpromotions = [e for e in sys_on.superblock_log if is_kpath(e[2])]
    assert kpromotions
    assert all(e[0] == "helper" for e in kpromotions)
    # ...never under the kill switch...
    assert not [e for e in sys_off.superblock_log if is_kpath(e[2])]
    # ...and moved zero bits.
    assert _digest(vm_on, res_on) == _digest(vm_off, res_off)


def _stitchable_encoded(cm):
    schema = shared_schema(cm.dag, 2)
    assert schema is not None
    for number in range(schema.num_kpaths):
        encoded = encode_kpath(number)
        if trace_blocks(cm, encoded) is not None:
            return encoded
    pytest.fail("no stitchable k-window in the bimodal helper")


def _engaged_kcm():
    _, cm = _helper_cm()
    encoded = _stitchable_encoded(cm)
    assert install_superblock(cm, encoded, CostModel())
    assert cm.sb_path == encoded
    assert is_kpath(cm.sb_path)
    return cm


def test_ktrace_blocks_span_k_iterations():
    _, cm = _helper_cm()
    encoded = _stitchable_encoded(cm)
    trace = trace_blocks(cm, encoded)
    labels = [block.label for block in trace]
    # A mono-header cyclic window: the split header top opens each of
    # the two stitched iterations, so it appears exactly k times — the
    # repetition 1-path traces never have.
    assert labels.count(labels[0]) == 2
    assert len(labels) > len(set(labels))


def test_ktrace_execution_bit_identity():
    from repro.sampling.arnold_grove import make_sampler

    # Odd trip count: every call ends mid-window, forcing the trace's
    # side exit in the middle of a stitched pair.
    program = bimodal_program(calls=60, inner=5)
    digests = []
    for traced in (False, True):
        code, cm = _helper_cm(program)
        if traced:
            assert install_superblock(
                cm, _stitchable_encoded(cm), CostModel()
            )
        vm = VirtualMachine(
            code, program.main, costs=CostModel(), tick_interval=500.0,
            sampler=make_sampler(8, 3), blockjit=True,
        )
        digests.append(_digest(vm, vm.run()))
    assert digests[0] == digests[1]


def test_pickled_ktrace_revives_through_ensure_jit(monkeypatch):
    monkeypatch.setattr(flags, "SUPERBLOCK", True)
    cm = _engaged_kcm()
    clone = pickle.loads(pickle.dumps(cm))
    # Callables never pickle; source + path + fingerprint ride along.
    assert clone.sb_entry is None
    assert clone.sb_path == cm.sb_path
    assert clone.sb_fingerprint == cm.sb_fingerprint
    blockjit.ensure_jit(clone)
    assert clone.sb_entry is not None


def test_kblpp_kill_switch_keeps_but_does_not_install(monkeypatch):
    monkeypatch.setattr(flags, "SUPERBLOCK", True)
    cm = _engaged_kcm()
    clone = pickle.loads(pickle.dumps(cm))
    monkeypatch.setattr(flags, "KBLPP", False)
    blockjit.ensure_jit(clone)
    # The warm-ladder idiom: nothing installs, artefacts survive for a
    # later enabled process (the fingerprint still matches).
    assert clone.sb_entry is None
    assert clone.sb_source is not None
    assert is_kpath(clone.sb_path)


def test_k_change_drops_the_stale_ktrace(monkeypatch):
    monkeypatch.setattr(flags, "SUPERBLOCK", True)
    cm = _engaged_kcm()
    clone = pickle.loads(pickle.dumps(cm))
    monkeypatch.setattr(flags, "KBLPP_K", 3)
    blockjit.ensure_jit(clone)
    # The fingerprint embeds the resolved k: the number would decode in
    # the wrong path space, so the artefact is dropped wholesale.
    assert clone.sb_entry is None
    assert clone.sb_source is None
    assert clone.sb_path is None


def test_fingerprint_folds_k_only_for_ktraces(monkeypatch):
    cm = _engaged_kcm()
    encoded = cm.sb_path
    fp_k2 = superblock_fingerprint(cm, encoded)
    monkeypatch.setattr(flags, "KBLPP_K", 3)
    assert superblock_fingerprint(cm, encoded) != fp_k2
    # Non-k artefacts stay byte-stable across a k change.
    from repro.vm.tracefast import WARM_PATH

    monkeypatch.setattr(flags, "KBLPP_K", 2)
    fp_warm = superblock_fingerprint(cm, WARM_PATH)
    monkeypatch.setattr(flags, "KBLPP_K", 3)
    assert superblock_fingerprint(cm, WARM_PATH) == fp_warm


# -- fault-plan parity -------------------------------------------------------


def test_fault_plan_digest_parity_on_off():
    program = bimodal_program()
    plan = {"sample": 0.2, "path-reconstruct": 0.2, "path-table": 0.2,
            "tracefast-compile": 0.5}
    digests = []
    for kblpp in (True, False):
        _, vm, result = _kblpp_run(
            program, kblpp,
            resilience=ResilienceManager(plan=FaultPlan(plan, seed=5)),
        )
        digests.append(_digest(vm, result))
    assert digests[0] == digests[1]


def test_compile_fault_blocks_the_kpromotion():
    program = bimodal_program()
    plan = FaultPlan({"tracefast-compile": 1.0}, seed=11)
    system, vm, result = _kblpp_run(
        program, True, resilience=ResilienceManager(plan=plan)
    )
    assert not [e for e in system.superblock_log if is_kpath(e[2])]


# -- whole-suite parity (all 17 bundled workloads) ---------------------------


def _workload_checksum(workload: str, kblpp: bool) -> str:
    import repro.api as api

    suite = {w.name: w for w in benchmark_suite()}
    old_kb, old_sb = flags.KBLPP, flags.SUPERBLOCK
    flags.KBLPP, flags.SUPERBLOCK = kblpp, True
    try:
        program = suite[workload].build(0.3)
        report = api.profile_adaptive(
            program, samples=16, stride=3, ticks=100
        )
    finally:
        flags.KBLPP, flags.SUPERBLOCK = old_kb, old_sb
    return payload_checksum(
        {
            "paths": sorted(report.paths.items()),
            "edges": sorted((repr(b), c) for b, c in report.edges.items()),
            "output": list(report.result.output),
            "return_value": report.result.return_value,
            "cycles": report.result.cycles,
            "recompilations": report.result.recompilations,
            "compile_cycles": report.result.compile_cycles,
            "health": report.health.to_dict(),
        }
    )


@pytest.mark.parametrize("workload", ALL_WORKLOADS)
def test_workload_digest_parity(workload):
    on = _workload_checksum(workload, kblpp=True)
    off = _workload_checksum(workload, kblpp=False)
    assert on == off
