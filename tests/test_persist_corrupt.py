"""Corrupt-persistence tests: advice files are untrusted input.

Truncated JSON, wrong format tags, negative/NaN counts, and checksum
mismatches must all surface as :class:`AdviceError` (or degrade to a
no-advice run through :func:`load_advice_or_none`) — never as an
unhandled ``KeyError``/``ValueError``/``JSONDecodeError``.
"""

import json
import os

import pytest

from repro.adaptive.replay import record_advice
from repro.errors import AdviceError, ReproError
from repro.persist import (
    advice_to_dict,
    edge_profile_from_dict,
    load_advice,
    load_advice_or_none,
    path_profile_from_dict,
    payload_checksum,
    save_advice,
)
from repro.resilience import FaultInjector, FaultPlan, HealthReport

from tests.test_adaptive_system import hot_loop_program


@pytest.fixture(scope="module")
def advice():
    return record_advice(hot_loop_program(800), tick_interval=2000.0)


@pytest.fixture()
def advice_file(advice, tmp_path):
    path = tmp_path / "advice.json"
    save_advice(advice, str(path))
    return str(path)


# -- atomic, checksummed writes ------------------------------------------------


def test_save_writes_checksum_and_leaves_no_temp_files(advice, tmp_path):
    path = tmp_path / "advice.json"
    save_advice(advice, str(path))
    data = json.loads(path.read_text())
    recorded = data.pop("checksum")
    assert recorded == payload_checksum(data)
    # No stray temp files from the atomic write.
    assert os.listdir(tmp_path) == ["advice.json"]


def test_checksummed_roundtrip(advice, advice_file):
    restored = load_advice(advice_file)
    assert restored.levels == advice.levels
    assert restored.samples == advice.samples


def test_legacy_file_without_checksum_still_loads(advice, tmp_path):
    path = tmp_path / "legacy.json"
    path.write_text(json.dumps(advice_to_dict(advice)))
    restored = load_advice(str(path))
    assert restored.levels == advice.levels


# -- corruption modes all raise AdviceError -----------------------------------


def test_missing_file(tmp_path):
    with pytest.raises(AdviceError, match="cannot read"):
        load_advice(str(tmp_path / "nope.json"))


def test_truncated_json(advice_file, tmp_path):
    text = open(advice_file).read()
    path = tmp_path / "truncated.json"
    path.write_text(text[: len(text) // 2])
    with pytest.raises(AdviceError, match="corrupt JSON"):
        load_advice(str(path))


def test_empty_file(tmp_path):
    path = tmp_path / "empty.json"
    path.write_text("")
    with pytest.raises(AdviceError, match="corrupt JSON"):
        load_advice(str(path))


def test_non_dict_document(tmp_path):
    path = tmp_path / "list.json"
    path.write_text("[1, 2, 3]")
    with pytest.raises(AdviceError):
        load_advice(str(path))


def test_wrong_format_tag(advice, tmp_path):
    data = advice_to_dict(advice)
    data["format"] = "other-tool/9"
    path = tmp_path / "wrong_format.json"
    path.write_text(json.dumps(data))
    with pytest.raises(AdviceError, match="pep-repro/1"):
        load_advice(str(path))


def test_wrong_kind_tag(advice, tmp_path):
    data = advice_to_dict(advice)
    data["kind"] = "edge-profile"
    path = tmp_path / "wrong_kind.json"
    path.write_text(json.dumps(data))
    with pytest.raises(AdviceError, match="advice"):
        load_advice(str(path))


def test_checksum_mismatch_names_file_and_hashes(advice, advice_file):
    data = json.loads(open(advice_file).read())
    # Flip a payload value without refreshing the checksum.
    first = next(iter(data["samples"]))
    data["samples"][first] += 1
    with open(advice_file, "w") as fh:
        json.dump(data, fh)
    with pytest.raises(AdviceError) as info:
        load_advice(advice_file)
    message = str(info.value)
    assert "checksum mismatch" in message
    assert advice_file in message
    assert data["checksum"] in message


@pytest.mark.parametrize("bad", [-3, float("nan"), float("inf")])
def test_bad_sample_counts(advice, tmp_path, bad):
    data = advice_to_dict(advice)
    first = next(iter(data["samples"]))
    data["samples"][first] = bad
    path = tmp_path / "bad_samples.json"
    path.write_text(json.dumps(data))  # json emits NaN/Infinity tokens
    with pytest.raises(AdviceError):
        load_advice(str(path))


@pytest.mark.parametrize("bad", [-1.0, float("nan"), "many"])
def test_bad_edge_counts(bad):
    data = {
        "format": "pep-repro/1",
        "kind": "edge-profile",
        "branches": [
            {"method": "m", "index": 0, "taken": bad, "not_taken": 1},
        ],
    }
    with pytest.raises(AdviceError):
        edge_profile_from_dict(data)


@pytest.mark.parametrize("bad", [-2, float("nan")])
def test_bad_path_counts(bad):
    data = {
        "format": "pep-repro/1",
        "kind": "path-profile",
        "methods": {"m#v0": {"0": bad}},
    }
    with pytest.raises(AdviceError):
        path_profile_from_dict(data)


def test_missing_payload_keys_become_advice_error(tmp_path):
    path = tmp_path / "hollow.json"
    path.write_text(json.dumps({"format": "pep-repro/1", "kind": "advice"}))
    with pytest.raises(AdviceError, match="malformed advice payload"):
        load_advice(str(path))


def test_every_corruption_is_a_repro_error(advice_file):
    # The documented contract: catching ReproError catches any library
    # failure, including persistence ones.
    try:
        load_advice(advice_file + ".missing")
    except ReproError:
        pass
    else:  # pragma: no cover
        pytest.fail("AdviceError must derive from ReproError")


# -- graceful degradation: no-advice run --------------------------------------


def test_load_advice_or_none_degrades_with_warning(tmp_path):
    path = tmp_path / "garbage.json"
    path.write_text("{ not json")
    health = HealthReport()
    assert load_advice_or_none(str(path), health=health) is None
    assert health.warnings and "without advice" in health.warnings[0]
    assert health.degradations[0][0] == "advice-noadvice"


def test_load_advice_or_none_success_path(advice, advice_file):
    health = HealthReport()
    restored = load_advice_or_none(advice_file, health=health)
    assert restored is not None
    assert restored.levels == advice.levels
    assert health.events() == 0


def test_advice_load_injection_site(advice_file):
    injector = FaultInjector(FaultPlan({"advice-load": 1.0}, seed=1))
    with pytest.raises(AdviceError, match="injected advice-load fault"):
        load_advice(advice_file, injector=injector)
    health = HealthReport()
    injector2 = FaultInjector(FaultPlan({"advice-load": 1.0}, seed=1), health)
    assert load_advice_or_none(advice_file, health=health, injector=injector2) is None
    assert health.faults == {"advice-load": 1}
