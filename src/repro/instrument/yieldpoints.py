"""Yieldpoint insertion (paper sections 3.2 and 4.1).

Jikes RVM inserts yieldpoints on loop headers, method entries, and method
exits so the VM can gain control of a thread quickly; PEP piggybacks its
sampling on exactly these points.  Rules implemented here:

* uninterruptible methods receive no yieldpoints at all;
* blocks inlined from uninterruptible callees (``method.no_yield_labels``)
  receive no header yieldpoints — the case where PEP loses paths
  (section 4.3);
* optionally, branch-free leaf methods are skipped (their path profile is
  trivial, section 4.3 case 1).
"""

from __future__ import annotations

from typing import Optional

from repro.bytecode.instructions import Br, Ret, Yieldpoint
from repro.bytecode.method import Method
from repro.cfg.graph import CFG
from repro.cfg.loops import LoopInfo, analyze_loops


def is_trivial_leaf(method: Method) -> bool:
    """True for methods with no conditional branches and no calls."""
    for block in method.iter_blocks():
        if isinstance(block.terminator, Br):
            return False
        for instr in block.instrs:
            if instr.op == "call":
                return False
    return True


def insert_yieldpoints(
    method: Method,
    loops: Optional[LoopInfo] = None,
    skip_trivial_leaves: bool = False,
) -> int:
    """Insert entry/header/exit yieldpoints; returns how many were added.

    Idempotence: a block that already starts with a yieldpoint (or a ret
    block already preceded by one) is left alone, so compiler pipelines
    may re-run the pass safely.
    """
    if method.uninterruptible:
        return 0
    if skip_trivial_leaves and is_trivial_leaf(method):
        return 0
    if loops is None:
        loops = analyze_loops(CFG.from_method(method))

    added = 0
    entry_block = method.entry_block()
    if not (entry_block.instrs and isinstance(entry_block.instrs[0], Yieldpoint)):
        entry_block.instrs.insert(0, Yieldpoint("entry"))
        added += 1

    for label in loops.headers:
        if label in method.no_yield_labels:
            continue
        block = method.block(label)
        if block.instrs and isinstance(block.instrs[0], Yieldpoint):
            continue
        block.instrs.insert(0, Yieldpoint("header"))
        added += 1

    for label in method.exit_labels():
        block = method.block(label)
        last = block.instrs[-1] if block.instrs else None
        if isinstance(last, Yieldpoint) and last.kind == "exit":
            continue
        block.instrs.append(Yieldpoint("exit"))
        added += 1

    return added
