"""ASCII rendering of tables and bar-chart figures.

The benchmark harness regenerates each of the paper's figures as text: a
table of per-benchmark values plus a crude horizontal bar chart, which is
enough to eyeball the *shape* of a result (who wins, by how much) in a
terminal or a CI log.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import TableError


class AsciiTable:
    """Accumulates rows and renders them with aligned columns."""

    def __init__(self, headers: Sequence[str]) -> None:
        if not headers:
            raise TableError("a table needs at least one column")
        self._headers = [str(h) for h in headers]
        self._rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self._headers):
            raise TableError(
                f"expected {len(self._headers)} cells, got {len(cells)}"
            )
        self._rows.append([_format_cell(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(h) for h in self._headers]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [_render_row(self._headers, widths)]
        lines.append("-+-".join("-" * w for w in widths))
        for row in self._rows:
            lines.append(_render_row(row, widths))
        return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def _render_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    padded = []
    for index, cell in enumerate(cells):
        if index == 0:
            padded.append(cell.ljust(widths[index]))
        else:
            padded.append(cell.rjust(widths[index]))
    return " | ".join(padded)


def bar_chart(
    values: Dict[str, float],
    width: int = 40,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    unit: str = "",
) -> str:
    """Render a labelled horizontal bar chart of ``values``."""
    if not values:
        raise TableError("no values to chart")
    low = min(values.values()) if lo is None else lo
    high = max(values.values()) if hi is None else hi
    span = high - low or 1.0
    label_width = max(len(name) for name in values)
    lines = []
    for name, value in values.items():
        filled = int(round((value - low) / span * width))
        filled = max(0, min(width, filled))
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"{name.ljust(label_width)} |{bar}| {value:.3f}{unit}")
    return "\n".join(lines)


def format_figure(title: str, body: str) -> str:
    """Wrap a rendered table/chart with the figure banner used by benches."""
    rule = "=" * max(len(title), 8)
    return f"\n{rule}\n{title}\n{rule}\n{body}\n"
