"""Figure 11: PEP collecting profiles AND driving optimization (adaptive).

Paper result (adaptive methodology, median of 25 trials): using
PEP(64,17) both to collect a continuous edge profile and to drive the
optimizing compiler adds 1.3% average and 3.2% maximum overhead versus a
stock adaptive run — i.e. PEP's costs outweigh its benefit on these
predictable programs, because Jikes RVM's optimizations are not
aggressive enough to cash in the continuous information.

Shape asserted: the PEP-adaptive configuration carries a small positive
average overhead (costs exceed benefits), bounded by single digits.

The adaptive methodology is non-deterministic: we jitter the virtual
timer per trial and take the median, with fewer trials than the paper's
25 (the variance structure, not the trial count, is what matters).
"""

from benchmarks._common import average, bench_scale, emit, suite
from repro.adaptive.controller import AdaptiveConfig, AdaptiveSystem
from repro.harness.report import render_overhead_figure
from repro.sampling.arnold_grove import SamplingConfig
from repro.util.stats import median
from repro.vm.costs import CostModel

TRIALS = 3
NOMINAL_TICK = 200_000.0  # cycles at scale 1.0, divided by ticks_target


def adaptive_cycles(workload, config, trial):
    program = workload.build(bench_scale())
    system = AdaptiveSystem(program, costs=CostModel(), config=config)
    tick = NOMINAL_TICK * bench_scale() / workload.ticks_target
    vm = system.make_vm(tick, tick_jitter=0.2, jitter_seed=trial + 1)
    result = vm.run()
    return result.cycles


def regenerate():
    normalized = {"adaptive+PEP(64,17)": {}}
    for workload in suite():
        base_trials = []
        pep_trials = []
        for trial in range(TRIALS):
            base_trials.append(
                adaptive_cycles(workload, AdaptiveConfig(), trial)
            )
            pep_trials.append(
                adaptive_cycles(
                    workload,
                    AdaptiveConfig(pep=SamplingConfig(64, 17)),
                    trial,
                )
            )
        normalized["adaptive+PEP(64,17)"][workload.name] = median(
            pep_trials
        ) / median(base_trials)
    return normalized


def test_fig11_adaptive_pep(benchmark):
    normalized = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    names = [w.name for w in suite()]
    emit(
        render_overhead_figure(
            "Figure 11: PEP(64,17) collecting profiles and driving "
            "optimization (adaptive methodology)",
            names,
            ["adaptive+PEP(64,17)"],
            normalized,
        )
    )

    overheads = [normalized["adaptive+PEP(64,17)"][n] - 1.0 for n in names]
    # Costs slightly outweigh benefits (paper: +1.3% avg, +3.2% max).
    assert -0.01 < average(overheads) < 0.06
    assert max(overheads) < 0.12
