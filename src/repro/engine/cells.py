"""Experiment cells: the engine's unit of schedulable work.

A :class:`CellSpec` is a fully self-describing, picklable recipe for one
measurement — workload name, scale, configuration spec, trial index, and
a deterministic seed.  Workers rebuild everything else (program, advice,
calibrated timer) from scratch, so a cell produces the same bytes no
matter which process runs it, in what order, or after which other cells.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.util.rng import DeterministicRng

# Trials beyond the first decorrelate timer phase by this fraction of one
# tick interval (trial 0 always runs at canonical phase so single-trial
# sweeps are bit-identical to plain harness runs).
DEFAULT_TICK_JITTER = 0.5


def cell_seed(master_seed: int, index: int) -> int:
    """A 64-bit per-cell seed derived from a named RNG stream.

    Uses :meth:`DeterministicRng.from_name` so the seed depends only on
    (master seed, cell index) — never on process identity, scheduling
    order, or worker count.
    """
    rng = DeterministicRng.from_name(f"engine-cell-{index}", salt=master_seed)
    return (rng.next_u32() << 32) | rng.next_u32()


class CellSpec:
    """One (workload, configuration, trial) measurement to perform."""

    __slots__ = (
        "index",
        "workload",
        "scale",
        "config_spec",
        "trial",
        "seed",
        "tick_jitter",
        "collect_profiles",
        "include_compile_cycles",
    )

    def __init__(
        self,
        index: int,
        workload: str,
        scale: float,
        config_spec: Dict,
        trial: int = 0,
        seed: int = 0,
        tick_jitter: float = 0.0,
        collect_profiles: bool = False,
        include_compile_cycles: bool = False,
    ) -> None:
        self.index = index
        self.workload = workload
        self.scale = scale
        self.config_spec = config_spec
        self.trial = trial
        self.seed = seed
        self.tick_jitter = tick_jitter
        self.collect_profiles = collect_profiles
        self.include_compile_cycles = include_compile_cycles

    def __getstate__(self):
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __setstate__(self, state) -> None:
        for slot, value in zip(self.__slots__, state):
            setattr(self, slot, value)

    def __repr__(self) -> str:
        return (
            f"<CellSpec #{self.index} {self.workload}/"
            f"{self.config_spec.get('name')} trial={self.trial}>"
        )


class CellResult:
    """Outcome of one cell: metrics on success, an error record otherwise."""

    __slots__ = (
        "index",
        "workload",
        "config",
        "trial",
        "metrics",
        "error",
        "error_type",
        "attempts",
        "duration",
    )

    def __init__(
        self,
        index: int,
        workload: str,
        config: str,
        trial: int,
        metrics: Optional[Dict] = None,
        error: Optional[str] = None,
        error_type: Optional[str] = None,
        attempts: int = 1,
        duration: float = 0.0,
    ) -> None:
        self.index = index
        self.workload = workload
        self.config = config
        self.trial = trial
        self.metrics = metrics
        self.error = error
        self.error_type = error_type
        self.attempts = attempts
        self.duration = duration

    @property
    def ok(self) -> bool:
        return self.metrics is not None

    def __getstate__(self):
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __setstate__(self, state) -> None:
        for slot, value in zip(self.__slots__, state):
            setattr(self, slot, value)

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"error={self.error_type}"
        return (
            f"<CellResult #{self.index} {self.workload}/{self.config} "
            f"{status}>"
        )


def make_sweep_cells(
    workload_names: Iterable[str],
    config_specs: Iterable[Dict],
    scale: float,
    trials: int = 1,
    master_seed: int = 0,
    tick_jitter: float = DEFAULT_TICK_JITTER,
    collect_profiles: bool = False,
    include_compile_cycles: bool = False,
) -> List[CellSpec]:
    """Enumerate the (workload x config x trial) cells of a sweep.

    Cell order — and therefore cell index and cell seed — is fixed by
    the argument order alone, so a sweep's cell list is identical in
    every process that constructs it.
    """
    specs = list(config_specs)
    cells: List[CellSpec] = []
    index = 0
    for workload in workload_names:
        for spec in specs:
            for trial in range(trials):
                cells.append(
                    CellSpec(
                        index=index,
                        workload=workload,
                        scale=scale,
                        config_spec=spec,
                        trial=trial,
                        seed=cell_seed(master_seed, index),
                        tick_jitter=tick_jitter if trial > 0 else 0.0,
                        collect_profiles=collect_profiles,
                        include_compile_cycles=include_compile_cycles,
                    )
                )
                index += 1
    return cells


def run_cell(spec: CellSpec) -> Dict:
    """Execute one cell in the current process; raises on failure."""
    from repro.harness.experiment import measure_cell

    return measure_cell(
        spec.workload,
        spec.scale,
        spec.config_spec,
        seed=spec.seed,
        tick_jitter=spec.tick_jitter,
        collect_profiles=spec.collect_profiles,
        include_compile_cycles=spec.include_compile_cycles,
    )
