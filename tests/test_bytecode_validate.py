"""Tests for the bytecode verifier."""

import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.instructions import (
    Br,
    Call,
    Const,
    Jmp,
    PepInit,
    Ret,
    Yieldpoint,
)
from repro.bytecode.method import Method, Program
from repro.bytecode.validate import verify_method, verify_program
from repro.errors import VerificationError


def good_method(name="m"):
    method = Method(name, num_params=0, num_regs=2)
    entry = method.new_block("entry")
    entry.append(Const(0, 1))
    entry.terminator = Ret(0)
    return method


def test_verify_accepts_good_method():
    verify_method(good_method())


def test_empty_method_rejected():
    with pytest.raises(VerificationError):
        verify_method(Method("m"))


def test_missing_terminator_rejected():
    method = Method("m", num_regs=1)
    method.new_block("entry")
    with pytest.raises(VerificationError):
        verify_method(method)


def test_dangling_target_rejected():
    method = Method("m", num_regs=1)
    method.new_block("entry").terminator = Jmp("nowhere")
    with pytest.raises(VerificationError):
        verify_method(method)


def test_degenerate_branch_rejected():
    method = Method("m", num_regs=2)
    entry = method.new_block("entry")
    entry.terminator = Br("lt", 0, 1, "exit", "exit")
    method.new_block("exit").terminator = Ret(None)
    with pytest.raises(VerificationError):
        verify_method(method)


def test_register_out_of_range_rejected():
    method = Method("m", num_regs=1)
    entry = method.new_block("entry")
    entry.append(Const(5, 1))  # r5 out of range
    entry.terminator = Ret(None)
    with pytest.raises(VerificationError):
        verify_method(method)


def test_method_without_ret_rejected():
    method = Method("m", num_regs=1)
    a = method.new_block("a")
    a.terminator = Jmp("b")
    method.new_block("b").terminator = Jmp("a")
    with pytest.raises(VerificationError):
        verify_method(method)


def test_instrumentation_rejected_in_user_code():
    method = good_method()
    method.block("entry").instrs.insert(0, PepInit())
    with pytest.raises(VerificationError):
        verify_method(method)
    # ...but allowed for compiled code.
    verify_method(method, allow_instrumentation=True)


def test_yieldpoint_also_counts_as_instrumentation():
    method = good_method()
    method.block("entry").instrs.insert(0, Yieldpoint("entry"))
    with pytest.raises(VerificationError):
        verify_method(method)


def test_unknown_callee_rejected_with_program_context():
    program = Program("p")
    method = good_method("main")
    method.block("entry").instrs.append(Call(1, "ghost", ()))
    program.add(method)
    with pytest.raises(VerificationError):
        verify_program(program)


def test_program_requires_main():
    program = Program("p", main="main")
    program.add(good_method("not_main"))
    with pytest.raises(VerificationError):
        verify_program(program)


def test_main_must_take_no_params():
    program = Program("p")
    method = Method("main", num_params=1, num_regs=1)
    method.new_block("entry").terminator = Ret(0)
    program.add(method)
    with pytest.raises(VerificationError):
        verify_program(program)


def test_builder_output_always_verifies():
    pb = ProgramBuilder("p")
    f = pb.function("main")
    x = f.local(0)
    f.for_range(0, 5, 1, lambda i: f.assign(x, x + i))
    f.if_(x > 5, lambda: f.emit(x), lambda: f.emit(f.const(0)))
    f.ret(x)
    verify_program(pb.build())
