"""k-path numbering schemas: windows of 1-paths to k-DAG numbers (§16).

The sampler sees a stream of 1-path numbers per method.  A window of
``k`` consecutive samples is a k-path exactly when the chain invariant
holds: each path after the first begins (via a dummy-entry edge) at the
bottom half of the header where its predecessor ended.  This module
turns such a window into the k-DAG path number *without walking the
k-DAG at sample time*: each 1-path's total contribution to every window
slot is precomputed once, so a window's number is just ``k`` additions.

The slot contribution C(p, j) sums the k-DAG values of path ``p``'s
edges under the ownership rule that makes the decomposition exact:

* a trailing dummy-exit edge at slot ``j < k-1`` maps to the *carry*
  edge ``top@j -> bottom@j+1`` — the window-internal transition is owned
  by the slot that ends at the sample point;
* the successor's leading dummy-entry edge is therefore dropped at
  every slot except 0 (the carry already covers the transition — the
  k-DAG simply has no dummy entries past slot 0);
* every other edge maps to its slot-``j`` copy.

Summing C(w_j, j) over a chained window then counts each k-DAG edge of
the concatenated path exactly once, so it *is* the Ball-Larus number of
that path (``tests/test_kblpp.py`` pins this against brute-force
enumeration of the k-DAG).

Schemas are shared process-wide per (method, 1-DAG fingerprint, k) —
the :mod:`repro.profiling.regenerate` memo idiom — because adaptive
recompilation bumps method versions without changing the P-DAG, and
unrolling + numbering the k-DAG is worth doing once, not per version.
The k-path table itself (``vm.kpath_profile``) is a shadow structure:
it charges no virtual cycles and never enters digests, so recording can
be switched off (``REPRO_KBLPP=0``) with bit-identical results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cfg.dag import CARRY, DUMMY_ENTRY, DUMMY_EXIT, PDag
from repro.cfg.kdag import KDag, build_k_dag, split_klabel
from repro.errors import CFGError, NumberingError, PathReconstructionError
from repro.profiling.ballarus import assign_ball_larus_values
from repro.profiling.regenerate import dag_fingerprint, reconstruct_path

#: Methods whose k-DAG has more paths than this get no schema at all:
#: the number space would be useless for dominance anyway (every sample
#: lands on its own number) and precomputing contributions over it
#: wastes memory.  Distinct from the dense-table cap (``DENSE_PATH_CAP``
#: in :mod:`repro.profiling.paths`), which only demotes the *counter
#: table* to a sparse dict.
KBLPP_MAX_PATHS = 1 << 20

#: Per-schema bound on cached per-path contribution entries.
DESCRIBE_BOUND = 4096

#: Bound on distinct (method, DAG, k) schemas kept process-wide.
_REGISTRY_BOUND = 256

#: Description of one 1-path for window chaining: the header bottom it
#: begins at (None when it begins at method entry), the header top it
#: ends at (None when it ends at a ret), and its per-slot contributions.
PathInfo = Tuple[Optional[str], Optional[str], Tuple[int, ...]]


class KPathSchema:
    """Window-to-k-number arithmetic for one (method P-DAG, k) pair."""

    __slots__ = (
        "dag",
        "kdag",
        "k",
        "num_kpaths",
        "_edge_index",
        "_info",
        "_kedge_inv",
        "_entry_value",
    )

    def __init__(self, dag: PDag, k: int) -> None:
        self.dag = dag
        self.k = k
        self.kdag: KDag = build_k_dag(dag, k)
        self.num_kpaths = assign_ball_larus_values(self.kdag)
        # reconstruct_path returns the dag's own DagEdge objects, so an
        # identity map recovers each edge's index into dag.edges (the
        # kedge_map key) without a linear scan per edge.
        self._edge_index: Dict[int, int] = {
            id(edge): index for index, edge in enumerate(dag.edges)
        }
        self._info: Dict[int, Optional[PathInfo]] = {}
        # Inverse correspondence for split_window: k-DAG edge -> its
        # (slot, 1-DAG edge) origin, plus each header bottom's
        # dummy-entry value (a carry edge subsumes the next slot's
        # dummy entry, whose value must be restored when decomposing).
        self._kedge_inv: Dict[int, Tuple[int, int]] = {
            id(kedge): key for key, kedge in self.kdag.kedge_map.items()
        }
        self._entry_value: Dict[str, int] = {
            edge.dst: edge.value
            for edge in dag.edges
            if edge.kind == DUMMY_ENTRY
        }

    def describe(self, path_number: int) -> Optional[PathInfo]:
        """(start bottom, end top, per-slot contributions) for a 1-path.

        Returns None for numbers outside the 1-DAG's path space (a
        sample recorded before a path-table fault demoted the method,
        say) — callers drop the window rather than raise.
        """
        info = self._info.get(path_number)
        if info is None and path_number not in self._info:
            info = self._describe(path_number)
            if len(self._info) >= DESCRIBE_BOUND:
                self._info.pop(next(iter(self._info)))
            self._info[path_number] = info
        return info

    def _describe(self, path_number: int) -> Optional[PathInfo]:
        try:
            edges = reconstruct_path(self.dag, path_number)
        except PathReconstructionError:
            return None
        if not edges:
            return None
        first, last = edges[0], edges[-1]
        start_link = first.dst if first.kind == DUMMY_ENTRY else None
        end_link = last.src if last.kind == DUMMY_EXIT else None
        kedge_map = self.kdag.kedge_map
        edge_index = self._edge_index
        contribs: List[int] = []
        for slot in range(self.k):
            total = 0
            for edge in edges:
                if edge.kind == DUMMY_ENTRY and slot != 0:
                    continue  # transition owned by slot-1's carry edge
                total += kedge_map[(slot, edge_index[id(edge)])].value
            contribs.append(total)
        return start_link, end_link, tuple(contribs)

    def window_number(self, window: Sequence[int]) -> Optional[int]:
        """The k-DAG number of a chained window, or None if unchainable.

        ``window`` is ``k`` consecutive 1-path samples, oldest first.
        Chaining requires every non-final path to end at a header top
        and every non-initial path to begin at that header's bottom;
        anything else (a ret mid-window, a method-entry path past slot
        0, an undescribable number) voids the window.
        """
        if len(window) != self.k:
            return None
        split_map = self.dag.split_map
        total = 0
        prev_end: Optional[str] = None
        for slot, path_number in enumerate(window):
            info = self.describe(path_number)
            if info is None:
                return None
            start_link, end_link, contribs = info
            if slot > 0 and (
                start_link is None
                or prev_end is None
                or split_map.get(prev_end) != start_link
            ):
                return None
            if slot < self.k - 1 and end_link is None:
                return None
            total += contribs[slot]
            prev_end = end_link
        return total


    def split_window(self, path_number: int) -> Optional[Tuple[int, ...]]:
        """The 1-path components of a k-window number, oldest first.

        Inverse of :meth:`window_number` for full-length windows (the
        round trip is pinned by the tests).  Windows a ``ret`` ended
        before slot ``k-1`` decompose to fewer than ``k`` components.
        Returns None for numbers outside the k-DAG's path space.
        """
        if path_number < 0 or path_number >= self.num_kpaths:
            return None
        try:
            kedges = reconstruct_path(self.kdag, path_number)
        except PathReconstructionError:
            return None
        sums = [0] * self.k
        last_slot = 0
        for kedge in kedges:
            key = self._kedge_inv.get(id(kedge))
            if key is None:
                return None
            slot, base_index = key
            sums[slot] += self.dag.edges[base_index].value
            if slot > last_slot:
                last_slot = slot
            if kedge.kind == CARRY:
                bottom = split_klabel(kedge.dst)[0]
                sums[slot + 1] += self._entry_value[bottom]
        return tuple(sums[: last_slot + 1])


_SCHEMAS: Dict[Tuple[str, int, int], Optional[KPathSchema]] = {}


def shared_schema(dag: Optional[PDag], k: int) -> Optional[KPathSchema]:
    """The process-wide schema for (dag, k), or None when infeasible.

    None is returned — and cached, so the unrolling cost is paid once —
    for unnumbered DAGs, k-path spaces beyond :data:`KBLPP_MAX_PATHS`,
    and DAGs the unrolling rejects (no PEP split map).  ``k == 1`` is
    served like any other k: its k-DAG is structurally the 1-DAG and
    the numbering coincides, which the tests exploit as a sanity pin.
    """
    if dag is None or dag.num_paths <= 0:
        return None
    key = (dag.method_name, dag_fingerprint(dag), k)
    if key in _SCHEMAS:
        schema = _SCHEMAS.pop(key)
        _SCHEMAS[key] = schema  # refresh recency
        return schema
    try:
        schema: Optional[KPathSchema] = KPathSchema(dag, k)
        if schema.num_kpaths > KBLPP_MAX_PATHS:
            schema = None
    except (CFGError, NumberingError):
        schema = None
    if len(_SCHEMAS) >= _REGISTRY_BOUND:
        _SCHEMAS.pop(next(iter(_SCHEMAS)))
    _SCHEMAS[key] = schema
    return schema


def clear_shared_schemas() -> None:
    """Drop every shared schema (tests; memory pressure)."""
    _SCHEMAS.clear()
