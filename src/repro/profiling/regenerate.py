"""Greedy reconstruction of a path's edges from its path number.

Ball-Larus numbering has the property that, at every node, the outgoing
edge values are the prefix sums of the successor path counts.  Walking
from the entry and repeatedly taking the out-edge with the *largest value
not exceeding* the remaining number therefore recovers exactly the edge
sequence whose values sum to the path number (paper sections 3.2/3.3).

PEP computes a path's edges only on first sample and caches the result
(paper section 4.3); :class:`PathResolver` implements that cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bytecode.method import BranchRef
from repro.cfg.dag import DagEdge, PDag
from repro.errors import PathReconstructionError

BranchEvent = Tuple[BranchRef, bool]


def reconstruct_path(
    dag: PDag, path_number: int, injector=None
) -> List[DagEdge]:
    """Return the edge sequence of ``path_number`` in ``dag``.

    Requires that path numbering has been applied (``dag.num_paths`` > 0).
    ``injector`` (a :class:`repro.resilience.FaultInjector`) may force a
    deterministic :class:`PathReconstructionError` at the
    ``path-reconstruct`` site, exercising the caller's sample-drop and
    path-disable degradation paths.
    """
    if injector is not None and injector.should_fire(
        "path-reconstruct", dag.method_name
    ):
        raise PathReconstructionError(
            f"{dag.method_name}: injected reconstruction fault "
            f"(path {path_number})"
        )
    if dag.num_paths <= 0:
        raise PathReconstructionError(
            f"{dag.method_name}: DAG has not been numbered"
        )
    if not 0 <= path_number < dag.num_paths:
        raise PathReconstructionError(
            f"{dag.method_name}: path number {path_number} outside "
            f"[0, {dag.num_paths})"
        )
    remaining = path_number
    node = dag.entry
    edges: List[DagEdge] = []
    while True:
        outs = dag.out_edges[node]
        if not outs:
            break
        best: Optional[DagEdge] = None
        for edge in outs:
            if edge.value <= remaining and (best is None or edge.value > best.value):
                best = edge
        if best is None:
            raise PathReconstructionError(
                f"{dag.method_name}: no edge at {node!r} with value <= "
                f"{remaining}"
            )
        remaining -= best.value
        edges.append(best)
        node = best.dst
    if remaining != 0:
        raise PathReconstructionError(
            f"{dag.method_name}: leftover value {remaining} after reaching "
            f"{node!r}"
        )
    return edges


class PathResolver:
    """Memoising wrapper around :func:`reconstruct_path` for one method.

    Resolves a path number to its *branch events* — the (bytecode branch,
    taken?) pairs along the path — which is what the edge-profile update
    needs, plus the path's length in branches for the flow metric.
    """

    __slots__ = ("dag", "_cache")

    def __init__(self, dag: PDag) -> None:
        self.dag = dag
        self._cache: Dict[int, Tuple[List[BranchEvent], int]] = {}

    def is_cached(self, path_number: int) -> bool:
        """True if this path has been resolved before (cache hit)."""
        return path_number in self._cache

    def branch_events(self, path_number: int, injector=None) -> List[BranchEvent]:
        return self._resolve(path_number, injector)[0]

    def branch_length(self, path_number: int, injector=None) -> int:
        """Number of conditional-branch executions along the path (b_p)."""
        return self._resolve(path_number, injector)[1]

    def cached_count(self) -> int:
        return len(self._cache)

    def _resolve(
        self, path_number: int, injector=None
    ) -> Tuple[List[BranchEvent], int]:
        # A cached expansion cannot fault — only first-time regeneration
        # runs the greedy walk (and its injection site).
        hit = self._cache.get(path_number)
        if hit is not None:
            return hit
        edges = reconstruct_path(self.dag, path_number, injector)
        events: List[BranchEvent] = [
            (edge.origin, bool(edge.taken))
            for edge in edges
            if edge.origin is not None
        ]
        entry = (events, len(events))
        self._cache[path_number] = entry
        return entry
