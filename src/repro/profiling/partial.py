"""Partial-path reconstruction (paper section 3.2, the yieldpoint-free
variant).

PEP as implemented samples the path register only at path *ends* (loop
headers and method exits), where r is a complete path number.  The paper
sketches an implementation for systems without thread-switch points: the
sampler may interrupt anywhere, so it reads a *partial* path number —
the sum of the edge values taken so far — plus the interrupt location,
and must recover the partially taken path.  "Conveniently, a partially
taken path can be identified from the partial path number using the same
greedy reconstruction algorithm."

:func:`reconstruct_partial` implements that: given the interrupted node
and the partial register value, it walks greedily from the DAG entry —
choosing, among edges that can still reach the interrupt node, the
largest value not exceeding the remainder — and returns the edge prefix.

Why greedy still works: Ball-Larus assigns each node's outgoing edges
values that partition ``[0, NumPaths(node))`` into disjoint,
consecutive intervals ordered by edge value; restricting to edges that
reach the interrupt node preserves the partition property for the
values that can actually occur, so the largest-fitting edge is the
unique correct choice.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.cfg.dag import DagEdge, PDag
from repro.errors import PathReconstructionError


def nodes_reaching(dag: PDag, target: str) -> Set[str]:
    """All nodes from which ``target`` is reachable (including itself)."""
    if target not in dag.out_edges:
        raise PathReconstructionError(
            f"{dag.method_name}: unknown node {target!r}"
        )
    preds: Dict[str, List[str]] = {node: [] for node in dag.nodes}
    for edge in dag.edges:
        preds[edge.dst].append(edge.src)
    reached = {target}
    stack = [target]
    while stack:
        node = stack.pop()
        for pred in preds[node]:
            if pred not in reached:
                reached.add(pred)
                stack.append(pred)
    return reached


def reconstruct_partial(
    dag: PDag,
    partial_value: int,
    at_node: str,
) -> List[DagEdge]:
    """Edges of the partial path that accumulated ``partial_value`` and
    was interrupted at ``at_node``.

    Requires a numbered DAG.  Raises if no entry-to-``at_node`` prefix
    sums to the given value (an inconsistent register/location pair).
    """
    if dag.num_paths <= 0:
        raise PathReconstructionError(
            f"{dag.method_name}: DAG has not been numbered"
        )
    if partial_value < 0:
        raise PathReconstructionError(
            f"{dag.method_name}: negative partial value {partial_value}"
        )
    can_reach = nodes_reaching(dag, at_node)
    if dag.entry not in can_reach:
        raise PathReconstructionError(
            f"{dag.method_name}: {at_node!r} unreachable from entry"
        )

    remaining = partial_value
    node = dag.entry
    edges: List[DagEdge] = []
    while node != at_node:
        best = None
        for edge in dag.out_edges[node]:
            if edge.dst not in can_reach and edge.dst != at_node:
                continue
            if edge.value <= remaining and (
                best is None or edge.value > best.value
            ):
                best = edge
        if best is None:
            raise PathReconstructionError(
                f"{dag.method_name}: no viable edge at {node!r} with "
                f"remaining value {remaining}"
            )
        remaining -= best.value
        edges.append(best)
        node = best.dst
    if remaining != 0:
        raise PathReconstructionError(
            f"{dag.method_name}: leftover value {remaining} at "
            f"{at_node!r} — inconsistent partial number"
        )
    return edges
