"""Graceful-degradation policies, and the manager that owns them.

Jikes RVM (the paper's substrate) survives profiler and compiler
hiccups by quietly falling back: a failed opt-compile keeps the baseline
body, a bad sample is dropped, a corrupt advice file means a plain run.
:class:`ResilienceManager` gives this reproduction the same posture.  It
bundles

* an optional :class:`~repro.resilience.faults.FaultInjector` (proving
  the policies out under deterministic injected faults),
* a :class:`DegradationPolicy` (the knobs), and
* the :class:`~repro.resilience.health.HealthReport` ledger,

and exposes the three policies the hot layers consult:

* **compile blacklist + backoff** — a failed opt-compile leaves the
  method at its current tier; retries are allowed only after an
  exponentially growing (capped) number of further method samples, and
  after ``max_compile_attempts`` failures the method is permanently
  blacklisted.  Execution continues at baseline either way.
* **K-strikes path disable** — ``max_reconstruction_failures``
  *consecutive* :class:`~repro.errors.PathReconstructionError`\\ s on one
  method disable PEP path profiling for that method; subsequent
  recompiles fall back to per-branch edge instrumentation (edge-only
  profiling), so an edge profile keeps flowing.
* **advice degrade** — a corrupt/truncated advice file becomes a
  no-advice run with a recorded warning (see
  :func:`repro.persist.load_advice_or_none`).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.health import HealthReport

#: Instrumentation modes that depend on path regeneration; when a method's
#: path profiling is disabled these degrade to plain edge counters.
_PATH_MODES = ("pep", "pep-nosmart", "pep-hot", "full-path", "classic-blpp")


class DegradationPolicy:
    """Knobs for the graceful-degradation policies."""

    __slots__ = (
        "max_reconstruction_failures",
        "compile_backoff_base",
        "compile_backoff_cap",
        "max_compile_attempts",
    )

    def __init__(
        self,
        max_reconstruction_failures: int = 3,
        compile_backoff_base: int = 4,
        compile_backoff_cap: int = 64,
        max_compile_attempts: int = 3,
    ) -> None:
        if max_reconstruction_failures < 1:
            raise ValueError("max_reconstruction_failures must be >= 1")
        if compile_backoff_base < 1:
            raise ValueError("compile_backoff_base must be >= 1")
        if compile_backoff_cap < compile_backoff_base:
            raise ValueError("compile_backoff_cap must be >= the base")
        if max_compile_attempts < 1:
            raise ValueError("max_compile_attempts must be >= 1")
        self.max_reconstruction_failures = max_reconstruction_failures
        self.compile_backoff_base = compile_backoff_base
        self.compile_backoff_cap = compile_backoff_cap
        self.max_compile_attempts = max_compile_attempts

    def backoff_for(self, failures: int) -> int:
        """Extra samples required before retry attempt ``failures + 1``."""
        return min(
            self.compile_backoff_base * (2 ** max(failures - 1, 0)),
            self.compile_backoff_cap,
        )


class ResilienceManager:
    """The one object the VM, controller, and sampler consult."""

    __slots__ = (
        "policy",
        "health",
        "injector",
        "_retry_at",
        "_blacklisted",
        "_recon_streak",
        "_path_disabled",
    )

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        policy: Optional[DegradationPolicy] = None,
        health: Optional[HealthReport] = None,
    ) -> None:
        self.policy = policy if policy is not None else DegradationPolicy()
        self.health = health if health is not None else HealthReport()
        self.injector = (
            FaultInjector(plan, self.health) if plan is not None else None
        )
        # method -> sample count at which an opt-compile retry is allowed.
        self._retry_at: Dict[str, int] = {}
        self._blacklisted: Set[str] = set()
        # method -> consecutive reconstruction failures.
        self._recon_streak: Dict[str, int] = {}
        self._path_disabled: Set[str] = set()

    # -- compile blacklist + backoff ----------------------------------------

    def compile_allowed(self, method: str, sample_count: int) -> bool:
        """May the controller attempt an opt-compile of ``method`` now?"""
        if method in self._blacklisted:
            return False
        retry_at = self._retry_at.get(method)
        return retry_at is None or sample_count >= retry_at

    def note_compile_failure(
        self, method: str, sample_count: int, error: Exception
    ) -> None:
        """A (real or injected) opt-compile failed; schedule the fallback."""
        failures = self.health.record_compile_failure(method)
        if failures >= self.policy.max_compile_attempts:
            self._blacklisted.add(method)
            self.health.blacklisted.append(method)
            self.health.record_degradation(
                "compile-blacklist",
                f"{method}: opt-compile failed {failures} times; staying at "
                f"current tier permanently ({error})",
            )
        else:
            backoff = self.policy.backoff_for(failures)
            self._retry_at[method] = sample_count + backoff
            self.health.record_degradation(
                "compile-backoff",
                f"{method}: opt-compile attempt {failures} failed; retrying "
                f"after {backoff} more samples ({error})",
            )

    def note_compile_success(self, method: str) -> None:
        self._retry_at.pop(method, None)

    def is_blacklisted(self, method: str) -> bool:
        return method in self._blacklisted

    # -- K-strikes path disable ---------------------------------------------

    def note_reconstruction_failure(self, method: str, error: Exception) -> None:
        """A sampled path could not be regenerated; drop it, maybe disable."""
        self.health.reconstruction_failures += 1
        self.health.record_dropped_sample()
        streak = self._recon_streak.get(method, 0) + 1
        self._recon_streak[method] = streak
        limit = self.policy.max_reconstruction_failures
        if streak >= limit and method not in self._path_disabled:
            self._path_disabled.add(method)
            self.health.path_disabled.append(method)
            self.health.record_degradation(
                "path-disable",
                f"{method}: {streak} consecutive path-reconstruction "
                f"failures; falling back to edge-only profiling ({error})",
            )

    def note_reconstruction_success(self, method: str) -> None:
        if self._recon_streak.get(method):
            self._recon_streak[method] = 0

    def path_profiling_enabled(self, method: str) -> bool:
        return method not in self._path_disabled

    def instrumentation_for(
        self, method: str, default: Optional[str]
    ) -> Optional[str]:
        """The instrumentation a recompile of ``method`` should use."""
        if default in _PATH_MODES and method in self._path_disabled:
            return "edges"
        return default

    # -- misc ----------------------------------------------------------------

    def drop_sample(self) -> None:
        self.health.record_dropped_sample()

    def __repr__(self) -> str:
        return (
            f"<ResilienceManager injector={self.injector!r} "
            f"blacklisted={sorted(self._blacklisted)} "
            f"path_disabled={sorted(self._path_disabled)}>"
        )
