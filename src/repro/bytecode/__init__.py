"""Guest bytecode: the "Java bytecode" analog that PEP instruments.

The ISA is a small register-based intermediate representation with explicit
basic blocks.  Guest programs are built either with
:class:`~repro.bytecode.builder.ProgramBuilder` (structured control flow) or
compiled from the mini-language front end (:mod:`repro.lang`).

Conditional branches are the unit of edge profiling: each ``Br`` terminator
carries a *bytecode branch id* assigned when a method is sealed, and every
IR-level copy made later by the optimizing compiler (inlining, unrolling)
keeps pointing at that original id — mirroring how Jikes RVM maps multiple
IR branches back to one bytecode branch (paper section 4.3).
"""

from repro.bytecode.instructions import (
    ALen,
    ALoad,
    AStore,
    BinOp,
    BinOpImm,
    Br,
    Call,
    Const,
    EdgeCount,
    Emit,
    Instr,
    Jmp,
    Move,
    NewArr,
    PathCount,
    PepAdd,
    PepInit,
    Ret,
    Terminator,
    Unary,
    Yieldpoint,
    ARITH_KINDS,
    CMP_KINDS,
    BINOP_KINDS,
)
from repro.bytecode.method import BasicBlock, BranchRef, Method, Program
from repro.bytecode.builder import FunctionBuilder, ProgramBuilder, Value
from repro.bytecode.validate import verify_method, verify_program
from repro.bytecode.disasm import disassemble_method, disassemble_program

__all__ = [
    "ALen",
    "ALoad",
    "AStore",
    "BinOp",
    "BinOpImm",
    "Br",
    "Call",
    "Const",
    "EdgeCount",
    "Emit",
    "Instr",
    "Jmp",
    "Move",
    "NewArr",
    "PathCount",
    "PepAdd",
    "PepInit",
    "Ret",
    "Terminator",
    "Unary",
    "Yieldpoint",
    "ARITH_KINDS",
    "CMP_KINDS",
    "BINOP_KINDS",
    "BasicBlock",
    "BranchRef",
    "Method",
    "Program",
    "FunctionBuilder",
    "ProgramBuilder",
    "Value",
    "verify_method",
    "verify_program",
    "disassemble_method",
    "disassemble_program",
]
