#!/usr/bin/env python
"""Quickstart: profile a small program with PEP.

Builds a toy order-processing program with the structured builder,
profiles it with PEP(64,17) via the high-level API, and prints the hot
paths, branch biases, and the profiling overhead — the three things the
paper's evaluation revolves around.

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import api
from repro.bytecode import ProgramBuilder


def build_program():
    pb = ProgramBuilder("orders")

    # A helper with a biased branch: most orders are small.
    price = pb.function("price", ["qty"])
    qty = price.p("qty")
    price.if_(
        qty < 10,
        lambda: price.ret(qty * 7),  # common: small order
        lambda: price.ret(qty * 6 + 50),  # rare: bulk discount
    )

    f = pb.function("main")
    state = f.local(42)
    revenue = f.local(0)
    rejected = f.local(0)

    def order(_i):
        # Guest-side pseudo-random order size.
        f.assign(state, (state * 1103515245 + 12345) & ((1 << 31) - 1))
        qty = (state >> 16) & 31

        def accept():
            f.assign(revenue, revenue + f.call("price", qty))

        def reject():
            f.assign(rejected, rejected + 1)

        # ~94% of orders pass validation.
        f.if_((qty ^ 21).ne(0), accept, reject)

        # Weekly settlement: a rarer second decision on the same path.
        f.if_(
            (state & 127) < 16,
            lambda: f.assign(revenue, revenue - (revenue >> 6)),
        )

    f.for_range(0, 20000, 1, order)
    f.emit(revenue)
    f.emit(rejected)
    f.ret(revenue)
    return pb.build()


def main():
    program = build_program()
    report = api.profile(program, samples=64, stride=17, ticks=200)

    print("== PEP(64,17) profile of the 'orders' program ==")
    print(f"samples taken:      {report.result.samples_taken}")
    print(f"distinct paths:     {report.paths.distinct_paths()}")
    print(f"profiling overhead: {report.overhead * 100:.2f}% (vs dry run)")
    print()

    print("hot paths (Wall threshold 0.125% of flow):")
    for (method, path_number), flow in report.hot_paths()[:8]:
        blocks = " -> ".join(report.path_blocks(method, path_number)[:6])
        print(f"  {method:18s} path {path_number:<4d} flow={flow:10.0f}  {blocks}")
    print()

    print("branch biases (taken fraction):")
    for branch, bias in sorted(report.branch_biases().items()):
        print(f"  {branch!r:24} {bias * 100:5.1f}% taken")


if __name__ == "__main__":
    main()
