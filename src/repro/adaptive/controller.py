"""The adaptive optimization system (paper section 4.1).

Methods start baseline-compiled; timer-driven method samples accumulate,
and crossing a threshold triggers recompilation at the next optimization
level using the edge profile available *at that moment* — the one-time
baseline profile in a stock configuration, or the continuously updated
profile when PEP is collecting (section 6.5 / figure 11).  Compile time
is charged to the running program, as on the paper's single test machine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bytecode.method import Program
from repro.errors import CompilationError
from repro.profiling.regenerate import PathResolver
from repro.sampling.arnold_grove import (
    ArnoldGroveSampler,
    SamplingConfig,
    TimerMethodSampler,
)
from repro.adaptive.baseline import compile_baseline
from repro.adaptive.optimizing import optimize_method
from repro.vm.costs import CostModel
from repro.vm.interpreter import CompiledMethod
from repro.vm.runtime import VirtualMachine


class AdaptiveConfig:
    """Knobs of the adaptive system."""

    __slots__ = ("thresholds", "pep", "instrumentation")

    def __init__(
        self,
        thresholds: Tuple[Tuple[int, int], ...] = ((2, 0), (6, 1), (14, 2)),
        pep: Optional[SamplingConfig] = None,
        instrumentation: Optional[str] = None,
    ) -> None:
        # thresholds: (samples needed, opt level), ascending.
        self.thresholds = thresholds
        # PEP sampling configuration; implies "pep" instrumentation.
        self.pep = pep
        self.instrumentation = (
            instrumentation if instrumentation is not None
            else ("pep" if pep is not None else None)
        )


class AdaptiveSystem:
    """Owns the code cache and reacts to method samples."""

    def __init__(
        self,
        program: Program,
        costs: Optional[CostModel] = None,
        config: Optional[AdaptiveConfig] = None,
        resilience=None,
    ) -> None:
        self.program = program
        self.costs = costs if costs is not None else CostModel()
        self.config = config if config is not None else AdaptiveConfig()
        # Fault-injection + degradation layer (repro.resilience).  When
        # present, a failed opt-compile keeps the current body and backs
        # off instead of aborting the run.
        self.resilience = resilience
        self.samples: Dict[str, int] = {}
        self.levels: Dict[str, Optional[int]] = {}  # None = baseline
        self.versions: Dict[str, int] = {}
        self.compile_log: List[Tuple[str, int]] = []
        # Resolver of every PEP-instrumented compiled version, keyed by
        # profile key, so path profiles of superseded versions stay
        # interpretable after recompilation.
        self.resolvers: Dict[str, PathResolver] = {}
        self.startup_compile_cycles = 0.0
        self.code: Dict[str, CompiledMethod] = {}
        self._bootstrap()

    def _bootstrap(self) -> None:
        """Baseline-compile every method, as class loading would."""
        for method in self.program.iter_methods():
            cm, cycles = compile_baseline(method, self.costs, version=0)
            self.code[method.name] = cm
            self.levels[method.name] = None
            self.versions[method.name] = 0
            self.startup_compile_cycles += cycles

    def make_vm(
        self,
        tick_interval: float,
        tick_jitter: float = 0.0,
        jitter_seed: int = 0,
    ) -> VirtualMachine:
        """A VM wired to this system's code cache and sample listener."""
        if self.config.pep is not None:
            sampler = ArnoldGroveSampler(self.config.pep)
        else:
            sampler = TimerMethodSampler()
        vm = VirtualMachine(
            self.code,
            self.program.main,
            costs=self.costs,
            tick_interval=tick_interval,
            sampler=sampler,
            method_sample_listener=self.on_method_sample,
            tick_jitter=tick_jitter,
            jitter_seed=jitter_seed,
            resilience=self.resilience,
        )
        # Startup (baseline) compilation happened before main ran, but it
        # is part of the program's wall-clock just the same.
        vm.cycles += self.startup_compile_cycles
        vm.compile_cycles += self.startup_compile_cycles
        return vm

    # -- the sample listener -------------------------------------------------

    def on_method_sample(self, vm: VirtualMachine, source_name: str) -> float:
        """Count a sample; recompile when a threshold is crossed."""
        count = self.samples.get(source_name, 0) + 1
        self.samples[source_name] = count

        target: Optional[int] = None
        for needed, level in self.config.thresholds:
            if count >= needed:
                target = level
        if target is None:
            return 0.0
        current = self.levels.get(source_name)
        if current is not None and current >= target:
            return 0.0

        method = self.program.methods.get(source_name)
        if method is None:
            return 0.0

        resilience = self.resilience
        instrumentation = self.config.instrumentation
        injector = None
        if resilience is not None:
            if not resilience.compile_allowed(source_name, count):
                # Blacklisted, or still inside the retry backoff window:
                # keep running the current (baseline or lower-tier) body.
                return 0.0
            instrumentation = resilience.instrumentation_for(
                source_name, instrumentation
            )
            injector = resilience.injector

        version = self.versions[source_name] + 1
        try:
            cm, compile_cycles = optimize_method(
                method,
                self.program,
                target,
                vm.edge_profile,
                self.costs,
                version=version,
                instrumentation=instrumentation,
                injector=injector,
            )
        except CompilationError as exc:
            if resilience is None:
                raise
            # Jikes-style fallback: the method keeps its current body and
            # the controller retries later with exponential backoff.
            resilience.note_compile_failure(source_name, count, exc)
            return 0.0
        if resilience is not None:
            resilience.note_compile_success(source_name)
        vm.code[source_name] = cm
        self.code[source_name] = cm
        self.levels[source_name] = target
        self.versions[source_name] = version
        self.compile_log.append((source_name, target))
        if cm.resolver is not None:
            self.resolvers[cm.profile_key] = cm.resolver
        vm.charge_compile(compile_cycles)
        return compile_cycles
