"""Profile collection and accuracy evaluation for one workload.

Implements the paper's comparison protocol:

* the *perfect* path profile comes from instrumentation-based path
  profiling (section 5.1); the *perfect* edge profile is derived from it
  by expanding every recorded path (avoiding the uninterruptible-header
  asymmetry, section 6.4);
* PEP's estimated profiles come from a sampled run with the same advice
  and therefore identical path numbering;
* path accuracy is Wall weight-matching over branch-flow (section 6.3);
  edge accuracy is relative or absolute overlap (section 6.4).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.metrics.overlap import absolute_overlap, relative_overlap
from repro.metrics.wall import path_profile_accuracy
from repro.profiling.edges import EdgeProfile
from repro.profiling.paths import PathProfile
from repro.profiling.regenerate import PathResolver
from repro.sampling.arnold_grove import SamplingConfig
from repro.harness.experiment import ExperimentContext, run_config, RunConfig


def derive_edge_profile(
    paths: PathProfile,
    resolvers: Dict[str, PathResolver],
) -> EdgeProfile:
    """Expand a path profile into taken/not-taken counts (section 3.3)."""
    edges = EdgeProfile()
    for key, path_number, freq in paths.items():
        resolver = resolvers.get(key)
        if resolver is None:
            continue
        for branch, taken in resolver.branch_events(path_number):
            edges.record(branch, taken, freq)
    return edges


class PerfectProfiles:
    """Ground truth for one workload: paths, derived edges, resolvers."""

    __slots__ = ("paths", "edges", "resolvers", "direct_edges")

    def __init__(
        self,
        paths: PathProfile,
        edges: EdgeProfile,
        resolvers: Dict[str, PathResolver],
        direct_edges: EdgeProfile,
    ) -> None:
        self.paths = paths
        self.edges = edges
        self.resolvers = resolvers
        self.direct_edges = direct_edges


def collect_perfect_profiles(ctx: ExperimentContext) -> PerfectProfiles:
    """Run the full-instrumentation configurations to get ground truth."""
    image = ctx.image("full-path")
    from repro.adaptive.replay import run_iteration_with_vm

    vm, _ = run_iteration_with_vm(image)
    resolvers = image.resolvers()
    paths = vm.path_profile.copy()
    edges = derive_edge_profile(paths, resolvers)

    # Direct per-branch instrumentation, for the "compare to
    # instrumentation-based edge profiling instead" footnote (section 6.4).
    edge_image = ctx.image("edges")
    vm2, _ = run_iteration_with_vm(edge_image)
    direct = vm2.edge_profile.copy()
    return PerfectProfiles(paths, edges, resolvers, direct)


def collect_pep_profiles(
    ctx: ExperimentContext,
    sampling: SamplingConfig,
) -> Tuple[PathProfile, EdgeProfile]:
    """Run PEP under a sampling configuration; returns (paths, edges)."""
    config = RunConfig(sampling.name, "pep", sampling)
    vm, _ = run_config(ctx, config)
    return vm.path_profile.copy(), vm.edge_profile.copy()


def path_accuracy(
    ctx: ExperimentContext,
    sampling: SamplingConfig,
    perfect: Optional[PerfectProfiles] = None,
) -> float:
    """Wall weight-matching accuracy of PEP(S,K) on this workload."""
    if perfect is None:
        perfect = collect_perfect_profiles(ctx)
    estimated_paths, _ = collect_pep_profiles(ctx, sampling)
    return path_profile_accuracy(
        perfect.paths, estimated_paths, perfect.resolvers
    )


def edge_accuracy(
    ctx: ExperimentContext,
    sampling: SamplingConfig,
    perfect: Optional[PerfectProfiles] = None,
    absolute: bool = False,
    against_direct: bool = False,
) -> float:
    """Edge-profile accuracy of PEP(S,K): relative or absolute overlap.

    ``against_direct`` compares to instrumentation-based *edge* profiling
    instead of path-derived edges — the comparison that loses ~2% in the
    paper because uninterruptible headers drop a few paths.
    """
    if perfect is None:
        perfect = collect_perfect_profiles(ctx)
    _, estimated_edges = collect_pep_profiles(ctx, sampling)
    actual = perfect.direct_edges if against_direct else perfect.edges
    if absolute:
        return absolute_overlap(actual, estimated_edges)
    return relative_overlap(actual, estimated_edges)
