"""Tests for the structured program builder."""

import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.validate import verify_program
from repro.errors import BytecodeError


def build_single(fn_body):
    pb = ProgramBuilder("t")
    f = pb.function("main")
    fn_body(f)
    program = pb.build()
    verify_program(program)
    return program


def test_straight_line_program():
    def body(f):
        x = f.local(5)
        y = x + 3
        f.emit(y * 2)
        f.ret()

    program = build_single(body)
    main = program.main_method()
    assert main.entry is not None
    assert main.instruction_count() > 0


def test_if_else_produces_diamond():
    def body(f):
        x = f.local(4)
        out = f.local(0)
        f.if_(x < 10, lambda: f.assign(out, 1), lambda: f.assign(out, 2))
        f.emit(out)
        f.ret()

    program = build_single(body)
    main = program.main_method()
    # One conditional branch, sealed with an id.
    assert main.branch_count == 1


def test_while_loop_structure():
    def body(f):
        i = f.local(0)
        f.while_(lambda: i < 10, lambda: f.assign(i, i + 1))
        f.emit(i)
        f.ret()

    program = build_single(body)
    assert program.main_method().branch_count == 1


def test_for_range_and_nesting():
    def body(f):
        total = f.local(0)

        def outer(i):
            f.for_range(0, 3, 1, lambda j: f.assign(total, total + j))

        f.for_range(0, 4, 1, outer)
        f.emit(total)
        f.ret()

    program = build_single(body)
    assert program.main_method().branch_count == 2


def test_for_range_zero_step_rejected():
    pb = ProgramBuilder("t")
    f = pb.function("main")
    with pytest.raises(BytecodeError):
        f.for_range(0, 10, 0, lambda i: None)


def test_break_and_continue():
    def body(f):
        i = f.local(0)
        hits = f.local(0)

        def loop_body():
            f.assign(i, i + 1)
            f.if_(i.eq(3), lambda: f.continue_())
            f.if_(i > 6, lambda: f.break_())
            f.assign(hits, hits + 1)

        f.while_(lambda: i < 100, loop_body)
        f.emit(hits)
        f.ret()

    program = build_single(body)
    verify_program(program)


def test_break_outside_loop_rejected():
    pb = ProgramBuilder("t")
    f = pb.function("main")
    with pytest.raises(BytecodeError):
        f.break_()
    with pytest.raises(BytecodeError):
        f.continue_()


def test_do_while_structure():
    def body(f):
        i = f.local(0)
        f.do_while_(lambda: f.assign(i, i + 1), lambda: i < 5)
        f.emit(i)
        f.ret()

    build_single(body)


def test_switch_lowering():
    def body(f):
        x = f.local(2)
        out = f.local(0)
        f.switch_(
            x,
            {
                0: lambda: f.assign(out, 10),
                1: lambda: f.assign(out, 20),
                2: lambda: f.assign(out, 30),
            },
            default=lambda: f.assign(out, -1),
        )
        f.emit(out)
        f.ret()

    program = build_single(body)
    assert program.main_method().branch_count == 3


def test_calls_between_functions():
    pb = ProgramBuilder("t")
    helper = pb.function("helper", ["n"])
    helper.ret(helper.p("n") + 1)
    main = pb.function("main")
    result = main.call("helper", 41)
    main.emit(result)
    main.ret()
    program = pb.build()
    verify_program(program)
    assert set(program.methods) == {"helper", "main"}


def test_unknown_parameter_rejected():
    pb = ProgramBuilder("t")
    f = pb.function("f", ["a"])
    with pytest.raises(BytecodeError):
        f.p("b")


def test_dead_code_after_ret_is_pruned():
    def body(f):
        f.ret(f.const(1))
        f.emit(f.const(2))  # unreachable

    program = build_single(body)
    # all remaining blocks reachable from entry
    main = program.main_method()
    assert main.remove_unreachable_blocks() == []


def test_uninterruptible_flag_propagates():
    pb = ProgramBuilder("t")
    f = pb.function("main")
    f.ret()
    g = pb.function("internal", uninterruptible=True)
    g.ret()
    program = pb.build()
    assert not program.method("main").uninterruptible
    assert program.method("internal").uninterruptible


def test_bool_materialises_comparison():
    def body(f):
        x = f.local(3)
        flag = f.bool(x < 5)
        f.emit(flag)
        f.ret()

    build_single(body)


def test_array_operations_build():
    def body(f):
        arr = f.array(f.const(8))
        f.store(arr, 0, 42)
        f.emit(f.load(arr, 0))
        f.emit(f.length(arr))
        f.ret()

    build_single(body)
