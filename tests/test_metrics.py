"""Tests for the accuracy and overhead metrics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bytecode.method import BranchRef
from repro.metrics.overhead import normalized_times, summarize_overhead
from repro.metrics.overlap import absolute_overlap, relative_overlap
from repro.metrics.wall import hot_paths, wall_accuracy
from repro.profiling.edges import EdgeProfile

B0 = BranchRef("m", 0)
B1 = BranchRef("m", 1)


# -- Wall weight-matching -----------------------------------------------------


def test_hot_paths_thresholding():
    flows = {("m", 0): 1000.0, ("m", 1): 500.0, ("m", 2): 0.5}
    hot = hot_paths(flows, threshold=0.00125)
    assert ("m", 0) in hot and ("m", 1) in hot
    assert ("m", 2) not in hot


def test_hot_paths_empty():
    assert hot_paths({}) == set()
    assert hot_paths({("m", 0): 0.0}) == set()


def test_wall_accuracy_perfect_match():
    flows = {("m", 0): 100.0, ("m", 1): 50.0, ("m", 2): 1.0}
    assert wall_accuracy(flows, dict(flows)) == pytest.approx(1.0)


def test_wall_accuracy_no_hot_paths_is_one():
    assert wall_accuracy({}, {}) == 1.0


def test_wall_accuracy_miss():
    actual = {("m", 0): 100.0, ("m", 1): 100.0}
    estimated = {("m", 0): 100.0, ("m", 2): 100.0}  # found only one of two
    assert wall_accuracy(actual, estimated) == pytest.approx(0.5)


def test_wall_accuracy_budget_limits_estimate():
    # One actual hot path, but the estimate ranks a cold one first.
    actual = {("m", 0): 1000.0, ("m", 1): 0.1}
    estimated = {("m", 1): 99.0, ("m", 0): 1.0}
    assert wall_accuracy(actual, estimated) == 0.0


def test_wall_accuracy_weights_by_actual_flow():
    actual = {("m", 0): 900.0, ("m", 1): 100.0}
    # Estimate identifies only the big one.
    estimated = {("m", 0): 1.0}
    assert wall_accuracy(actual, estimated) == pytest.approx(0.9)


# -- relative overlap -----------------------------------------------------------


def make_profile(entries):
    p = EdgeProfile()
    for branch, taken, not_taken in entries:
        if taken:
            p.record(branch, True, taken)
        if not_taken:
            p.record(branch, False, not_taken)
    return p


def test_relative_overlap_identical_is_one():
    a = make_profile([(B0, 90, 10), (B1, 5, 5)])
    assert relative_overlap(a, a.copy()) == pytest.approx(1.0)


def test_relative_overlap_flipped_is_low():
    a = make_profile([(B0, 90, 10)])
    assert relative_overlap(a, a.flipped()) == pytest.approx(1.0 - 0.8)


def test_relative_overlap_missing_branch_uses_default():
    a = make_profile([(B0, 100, 0)])
    empty = EdgeProfile()
    assert relative_overlap(a, empty) == pytest.approx(0.5)


def test_relative_overlap_weighting():
    # Hot branch agrees, cold branch disagrees completely.
    a = make_profile([(B0, 99, 0), (B1, 1, 0)])
    est = make_profile([(B0, 99, 0), (B1, 0, 1)])
    accuracy = relative_overlap(a, est)
    assert accuracy == pytest.approx((99 * 1.0 + 1 * 0.0) / 100)


def test_relative_overlap_empty_actual():
    assert relative_overlap(EdgeProfile(), EdgeProfile()) == 1.0


# -- absolute overlap -------------------------------------------------------------


def test_absolute_overlap_identical_is_one():
    a = make_profile([(B0, 70, 30), (B1, 10, 90)])
    assert absolute_overlap(a, a.copy()) == pytest.approx(1.0)


def test_absolute_overlap_empty_estimate_is_zero():
    a = make_profile([(B0, 1, 0)])
    assert absolute_overlap(a, EdgeProfile()) == 0.0


def test_absolute_overlap_partial():
    a = make_profile([(B0, 100, 0)])
    b = make_profile([(B0, 50, 50)])
    assert absolute_overlap(a, b) == pytest.approx(0.5)


def test_absolute_overlap_scale_invariant():
    a = make_profile([(B0, 70, 30)])
    b = make_profile([(B0, 700, 300)])
    assert absolute_overlap(a, b) == pytest.approx(1.0)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 5),
            st.floats(min_value=0, max_value=100),
            st.floats(min_value=0, max_value=100),
        ),
        min_size=1,
        max_size=8,
    )
)
def test_overlap_measures_bounded(entries):
    a = make_profile([(BranchRef("m", i), t, n) for i, t, n in entries])
    b = make_profile([(BranchRef("m", i), n, t) for i, t, n in entries])
    assert 0.0 <= relative_overlap(a, b) <= 1.0 + 1e-9
    assert 0.0 <= absolute_overlap(a, b) <= 1.0 + 1e-9


# -- overhead summaries -------------------------------------------------------------


def test_summarize_overhead():
    base = {"a": 100.0, "b": 200.0}
    measured = {"a": 101.0, "b": 206.0}
    normalized, avg, worst = summarize_overhead(measured, base)
    assert normalized["a"] == pytest.approx(1.01)
    assert avg == pytest.approx(0.02)
    assert worst == pytest.approx(0.03)


def test_normalized_times_requires_base():
    with pytest.raises(KeyError):
        normalized_times({"a": 1.0}, {"b": 1.0})
