"""Tests for dynamic call graph sampling (paper section 4.1)."""

import json

import pytest

from repro.adaptive.replay import record_advice
from repro.persist import (
    advice_from_dict,
    advice_to_dict,
    call_graph_from_dict,
    call_graph_to_dict,
)
from repro.profiling.callgraph import CallGraphProfile
from repro.sampling.arnold_grove import TimerMethodSampler
from repro.vm.runtime import VirtualMachine

from tests.compile_util import compile_simple
from tests.helpers import call_program
from tests.test_adaptive_system import hot_loop_program


def test_callgraph_structure():
    cg = CallGraphProfile()
    cg.record("main", "helper", 3)
    cg.record("main", "helper")
    cg.record(None, "main", 2)
    assert cg.count("main", "helper") == 4
    assert cg.count(None, "main") == 2
    assert cg.count("ghost", "x") == 0
    assert cg.callees_of("main") == {"helper": 4}
    assert cg.method_weight("helper") == 4
    assert cg.method_weight("main") == 2
    assert len(cg) == 2
    assert cg.hottest_edges(1) == [(("main", "helper"), 4)]


def test_callgraph_merge_and_copy():
    a = CallGraphProfile()
    a.record("m", "f")
    b = CallGraphProfile()
    b.record("m", "f", 2)
    b.record("m", "g")
    a.merge(b)
    assert a.count("m", "f") == 3
    c = a.copy()
    c.record("m", "f")
    assert a.count("m", "f") == 3


def test_vm_samples_call_edges():
    # Make helper dominate execution so ticks land inside it.
    from repro.bytecode.builder import ProgramBuilder

    pb = ProgramBuilder("p")
    h = pb.function("busy", ["n"])
    acc = h.local(0)
    h.for_range(0, 60, 1, lambda i: h.assign(acc, (acc + h.p("n")) & 0xFFFF))
    h.ret(acc)
    m = pb.function("main")
    total = m.local(0)
    m.for_range(0, 300, 1, lambda i: m.assign(total, total + m.call("busy", i)))
    m.ret(total)
    program = pb.build()

    code = compile_simple(program)
    vm = VirtualMachine(
        code, "main", tick_interval=1500.0, sampler=TimerMethodSampler()
    )
    result = vm.run()
    assert result.ticks > 5
    assert vm.call_graph.count("main", "busy") > 0
    # main is sampled at the root (no caller).
    total_samples = sum(count for _edge, count in vm.call_graph.items())
    assert total_samples == pytest.approx(result.ticks, abs=2)


def test_advice_includes_call_graph():
    program = hot_loop_program(2500)
    advice = record_advice(program, tick_interval=1500.0)
    assert len(advice.call_graph) > 0
    assert advice.call_graph.method_weight("main") > 0


def test_callgraph_roundtrip():
    cg = CallGraphProfile()
    cg.record("a", "b", 5)
    cg.record(None, "a", 2)
    restored = call_graph_from_dict(
        json.loads(json.dumps(call_graph_to_dict(cg)))
    )
    assert restored.count("a", "b") == 5
    assert restored.count(None, "a") == 2


def test_advice_roundtrip_preserves_call_graph():
    program = hot_loop_program(1200)
    advice = record_advice(program, tick_interval=1500.0)
    restored = advice_from_dict(json.loads(json.dumps(advice_to_dict(advice))))
    assert dict(restored.call_graph.items()) == dict(advice.call_graph.items())


def test_advice_without_call_graph_tolerated():
    program = hot_loop_program(300)
    advice = record_advice(program, tick_interval=2000.0)
    data = advice_to_dict(advice)
    del data["call_graph"]
    restored = advice_from_dict(data)
    assert len(restored.call_graph) == 0
