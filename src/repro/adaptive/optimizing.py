"""The optimizing compiler (paper sections 4.1, 4.3).

Three levels with a fixed pass pipeline:

* level 0: branch layout only;
* level 1: + inlining;
* level 2: + constant folding and dead-code elimination.

After optimization, yieldpoints are inserted (skipping branch-free
leaves, section 4.3) and the requested profiling instrumentation is
applied as the final pass, exactly where the paper adds PEP.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bytecode.method import Method, Program
from repro.errors import CompilationError
from repro.instrument.blpp_full import apply_full_blpp
from repro.instrument.edge_instr import apply_edge_instrumentation
from repro.instrument.pep import PepInstrumentation, apply_pep
from repro.instrument.yieldpoints import insert_yieldpoints
from repro.adaptive.passes import (
    apply_branch_layout,
    eliminate_dead_code,
    fold_constants,
    inline_small_methods,
)
from repro.profiling.edges import EdgeProfile
from repro.vm.costs import CostModel
from repro.vm.interpreter import CompiledMethod, lower_method, resolve_fuse

# Profiling instrumentation the optimizing compiler can attach:
#   None          - plain optimized code (the paper's Base)
#   "pep"         - PEP: cheap instrumentation + sample points
#   "pep-nosmart" - PEP with plain Ball-Larus numbering (ablation)
#   "pep-hot"     - PEP with inverted smart numbering (section 3.4 ablation)
#   "full-path"   - hash count[r]++ at every sample location (section 5.1)
#   "classic-blpp"- textbook Ball-Larus with array counters (section 2.2)
#   "edges"       - per-branch counters on optimized code (section 5.1)
INSTRUMENTATION_MODES = (
    None,
    "pep",
    "pep-nosmart",
    "pep-hot",
    "full-path",
    "classic-blpp",
    "edges",
)


def optimize_method(
    method: Method,
    program: Program,
    level: int,
    edge_profile: Optional[EdgeProfile],
    costs: CostModel,
    version: int = 0,
    instrumentation: Optional[str] = None,
    unroll: bool = False,
    injector=None,
    superblock_advice: Optional[Tuple[int, int]] = None,
) -> Tuple[CompiledMethod, float]:
    """Compile one method at opt level 0-2 with optional instrumentation.

    ``unroll=True`` additionally replicates simple loop bodies
    (:mod:`repro.adaptive.unroll`), the paper's other source of multiple
    IR branches per bytecode branch.  It is off by default so the
    benchmark suite's path structure stays comparable across runs.

    ``injector`` (a :class:`repro.resilience.FaultInjector`) may force a
    deterministic :class:`CompilationError` at the ``opt-compile`` site;
    callers with a :class:`~repro.resilience.ResilienceManager` treat it
    like any real compile failure (keep the current body, back off).

    ``superblock_advice`` — ``(path_number, dag_fingerprint)`` from a
    superseded compiled version — pre-installs the hot trace on the new
    body when its P-DAG fingerprint matches (path numbers are only
    meaningful relative to one DAG, so a mismatch misses cleanly).
    Best-effort and observable only in wall clock: no cycles charged.

    Returns the compiled method and the compile-time cycles charged
    (including PEP's extra pass cost when instrumenting).
    """
    if level not in (0, 1, 2):
        raise CompilationError(f"unknown optimization level {level}")
    if instrumentation not in INSTRUMENTATION_MODES:
        raise CompilationError(
            f"unknown instrumentation mode {instrumentation!r}"
        )
    if injector is not None and injector.should_fire("opt-compile", method.name):
        raise CompilationError(
            f"{method.name}: injected opt-compile fault (level {level})"
        )

    # Content-addressed compile cache: lowering is deterministic, so a
    # prior compile of identical inputs is returned directly (compile
    # cycles are still charged — the cache saves wall-clock only).
    # Fault-injected compiles bypass the cache in both directions.
    from repro.vm import codecache

    # Resolved fusion setting goes into both the cache key and the
    # lowering call: the default is environment-dependent (REPRO_FUSE),
    # and a persistent key must never conflate fused/unfused artefacts.
    fuse = resolve_fuse()
    cache = codecache.active_cache() if injector is None else None
    key: Optional[tuple] = None
    if cache is not None:
        key = codecache.optimize_key(
            method, program, level, instrumentation, unroll, version,
            costs, edge_profile, fuse=fuse,
        )
        hit = cache.get(key)
        if hit is not None:
            if superblock_advice is not None:
                _apply_superblock_advice(hit[0], superblock_advice, costs)
            return hit

    clone = method.clone()
    if level >= 1:
        inline_small_methods(clone, program)
    if level >= 2:
        fold_constants(clone)
        eliminate_dead_code(clone)
    if unroll:
        from repro.adaptive.unroll import unroll_simple_loops

        unroll_simple_loops(clone)
    apply_branch_layout(clone, edge_profile)
    insert_yieldpoints(clone, skip_trivial_leaves=True)

    inst: Optional[PepInstrumentation] = None
    if instrumentation == "pep":
        inst = apply_pep(clone, edge_profile, smart=True)
    elif instrumentation == "pep-nosmart":
        inst = apply_pep(clone, edge_profile, smart=False)
    elif instrumentation == "pep-hot":
        inst = apply_pep(clone, edge_profile, smart=True, invert_smart=True)
    elif instrumentation == "full-path":
        inst = apply_full_blpp(
            clone, edge_profile, style="pep", count_mode="hash"
        )
    elif instrumentation == "classic-blpp":
        inst = apply_full_blpp(
            clone, edge_profile, style="classic", count_mode="array"
        )
    elif instrumentation == "edges":
        apply_edge_instrumentation(clone)

    tier = f"opt{level}"
    cm = lower_method(clone, tier, costs, version=version, fuse=fuse)
    if inst is not None:
        cm.attach_dag(inst.dag)

    compile_cycles = costs.compile_cost(tier, method.instruction_count())
    if instrumentation is not None:
        compile_cycles += costs.pep_pass_cost_per_instr * method.instruction_count()
    if cache is not None and key is not None:
        cache.put(key, cm, compile_cycles)
    if superblock_advice is not None:
        _apply_superblock_advice(cm, superblock_advice, costs)
    return cm, compile_cycles


def _apply_superblock_advice(
    cm: CompiledMethod, advice: Tuple[int, int], costs=None
) -> None:
    """Carry a hot trace across a recompile; silent no-op on mismatch.

    A shared cache-hit instance may already hold a (different) trace —
    first-wins is fine, every superblock is behaviorally identical to
    plain blockjit.  Failures degrade to plain blockjit rather than
    failing the compile: the advice is an optimization hint, not part of
    the compiled artefact's contract.
    """
    from repro.profiling.regenerate import dag_fingerprint
    from repro.util.flags import superblock_enabled
    from repro.vm.superblock import install_superblock

    path_number, dag_fp = advice
    if cm.dag is None or not superblock_enabled():
        return
    if dag_fingerprint(cm.dag) != dag_fp:
        return
    try:
        install_superblock(cm, path_number, costs)
    except Exception:
        pass
