"""The adaptive optimization system (paper section 4.1).

Methods start baseline-compiled; timer-driven method samples accumulate,
and crossing a threshold triggers recompilation at the next optimization
level using the edge profile available *at that moment* — the one-time
baseline profile in a stock configuration, or the continuously updated
profile when PEP is collecting (section 6.5 / figure 11).  Compile time
is charged to the running program, as on the paper's single test machine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bytecode.method import Program
from repro.errors import CompilationError
from repro.profiling.regenerate import PathResolver, dag_fingerprint
from repro.sampling.arnold_grove import (
    ArnoldGroveSampler,
    SamplingConfig,
    TimerMethodSampler,
)
from repro.adaptive.baseline import compile_baseline
from repro.adaptive.optimizing import optimize_method
from repro.util.flags import (
    kblpp_enabled,
    kblpp_k,
    superblock_enabled,
    tracefast_enabled,
    warmjit_enabled,
)
from repro.vm.costs import CostModel
from repro.vm.superblock import (
    encode_kpath,
    find_dominant_kpath,
    find_dominant_path,
    install_superblock,
    trace_blocks,
)
from repro.vm.tracefast import WARM_PATH
from repro.vm.interpreter import CompiledMethod
from repro.vm.runtime import VirtualMachine


class AdaptiveConfig:
    """Knobs of the adaptive system."""

    __slots__ = (
        "thresholds",
        "pep",
        "instrumentation",
        "superblock",
        "superblock_threshold",
        "superblock_min_samples",
        "warmjit_min_samples",
        "kpath_threshold",
    )

    def __init__(
        self,
        thresholds: Tuple[Tuple[int, int], ...] = ((2, 0), (6, 1), (14, 2)),
        pep: Optional[SamplingConfig] = None,
        instrumentation: Optional[str] = None,
        superblock: Optional[bool] = None,
        superblock_threshold: float = 0.5,
        superblock_min_samples: float = 8.0,
        warmjit_min_samples: float = 4.0,
        kpath_threshold: Optional[float] = None,
    ) -> None:
        # thresholds: (samples needed, opt level), ascending.
        self.thresholds = thresholds
        # PEP sampling configuration; implies "pep" instrumentation.
        self.pep = pep
        self.instrumentation = (
            instrumentation if instrumentation is not None
            else ("pep" if pep is not None else None)
        )
        # Path-guided superblock formation (DESIGN.md §11): None defers
        # to REPRO_SUPERBLOCK; a method's dominant sampled path is
        # stitched into a straight-line trace once it holds >= the
        # threshold fraction of >= min_samples path samples.
        self.superblock = superblock
        self.superblock_threshold = superblock_threshold
        self.superblock_min_samples = superblock_min_samples
        # Warm-ladder promotion (DESIGN.md §15): a method that keeps
        # getting sampled but never forms a dominant path still gets
        # whole-method tracefast codegen (plain token-ladder arms) once
        # its *method* samples reach this floor.  Deliberately below
        # superblock_min_samples — warm is the consolation tier, and a
        # later dominance event upgrades the ladder to a real trace.
        self.warmjit_min_samples = warmjit_min_samples
        # Dominance threshold over the k-path window table (DESIGN.md
        # §16).  None derives ``superblock_threshold / k``: overlapping
        # windows split a cyclic kernel's mass across its k rotations
        # (an alternating loop's EO and OE windows each hold ~half the
        # iteration-pair mass), so a window holding 1/k-th of the
        # 1-path threshold marks a kernel holding the full threshold's
        # share of iterations, up to burst-boundary dilution.
        self.kpath_threshold = kpath_threshold


class AdaptiveSystem:
    """Owns the code cache and reacts to method samples."""

    def __init__(
        self,
        program: Program,
        costs: Optional[CostModel] = None,
        config: Optional[AdaptiveConfig] = None,
        resilience=None,
    ) -> None:
        self.program = program
        self.costs = costs if costs is not None else CostModel()
        self.config = config if config is not None else AdaptiveConfig()
        # Fault-injection + degradation layer (repro.resilience).  When
        # present, a failed opt-compile keeps the current body and backs
        # off instead of aborting the run.
        self.resilience = resilience
        self.samples: Dict[str, int] = {}
        self.levels: Dict[str, Optional[int]] = {}  # None = baseline
        self.versions: Dict[str, int] = {}
        self.compile_log: List[Tuple[str, int]] = []
        # Resolver of every PEP-instrumented compiled version, keyed by
        # profile key, so path profiles of superseded versions stay
        # interpretable after recompilation.
        self.resolvers: Dict[str, PathResolver] = {}
        self.startup_compile_cycles = 0.0
        self.code: Dict[str, CompiledMethod] = {}
        # Superblock promotion events: (source_name, profile_key, path).
        self.superblock_log: List[Tuple[str, str, int]] = []
        # Warm-ladder promotion events: (source_name, profile_key).
        self.warmjit_log: List[Tuple[str, str]] = []
        # Profile keys already considered for formation (one decision
        # per compiled version; recompiles get a fresh key).
        self._sb_attempted: set = set()
        self._warm_attempted: set = set()
        self._superblock = superblock_enabled(self.config.superblock)
        # k-iteration fallback (DESIGN.md §16): when no 1-path dominates
        # a method, its k-path table may still show a dominant
        # multi-iteration window worth stitching.  Only consulted when
        # superblock formation itself is on.
        self._kblpp = self._superblock and kblpp_enabled()
        self._kpath_threshold = (
            self.config.kpath_threshold
            if self.config.kpath_threshold is not None
            else self.config.superblock_threshold / kblpp_k()
        )
        # (profile key, encoded k-path) pairs that failed trace
        # eligibility — cached so the controller does not re-expand the
        # same unstitchable window at every later sample.
        self._kpath_rejected: set = set()
        # Backend for promoted traces (DESIGN.md §13): the whole-method
        # tracefast tier when enabled, the classic §11 superblock
        # otherwise.  Resolved once so one run uses one tier.
        self._tracefast = tracefast_enabled()
        # Warm-ladder tier (DESIGN.md §15): tracefast codegen with no
        # trace arm, for warm methods without a dominant path.  Only
        # meaningful when the tracefast backend itself is selected.
        self._warmjit = self._tracefast and warmjit_enabled()
        self._bootstrap()

    def _bootstrap(self) -> None:
        """Baseline-compile every method, as class loading would."""
        for method in self.program.iter_methods():
            cm, cycles = compile_baseline(method, self.costs, version=0)
            self.code[method.name] = cm
            self.levels[method.name] = None
            self.versions[method.name] = 0
            self.startup_compile_cycles += cycles

    def make_vm(
        self,
        tick_interval: float,
        tick_jitter: float = 0.0,
        jitter_seed: int = 0,
    ) -> VirtualMachine:
        """A VM wired to this system's code cache and sample listener."""
        if self.config.pep is not None:
            sampler = ArnoldGroveSampler(self.config.pep)
        else:
            sampler = TimerMethodSampler()
        vm = VirtualMachine(
            self.code,
            self.program.main,
            costs=self.costs,
            tick_interval=tick_interval,
            sampler=sampler,
            method_sample_listener=self.on_method_sample,
            tick_jitter=tick_jitter,
            jitter_seed=jitter_seed,
            resilience=self.resilience,
        )
        # Startup (baseline) compilation happened before main ran, but it
        # is part of the program's wall-clock just the same.
        vm.cycles += self.startup_compile_cycles
        vm.compile_cycles += self.startup_compile_cycles
        return vm

    # -- the sample listener -------------------------------------------------

    def on_method_sample(self, vm: VirtualMachine, source_name: str) -> float:
        """Count a sample; recompile when a threshold is crossed.

        After the (possible) recompile, hot-path superblock formation is
        considered — it charges no virtual cycles and touches no
        profiles, so it never perturbs the recompile cost returned here.
        """
        cost = self._maybe_recompile(vm, source_name)
        self._maybe_superblock(vm, source_name)
        return cost

    def _maybe_recompile(self, vm: VirtualMachine, source_name: str) -> float:
        count = self.samples.get(source_name, 0) + 1
        self.samples[source_name] = count

        target: Optional[int] = None
        for needed, level in self.config.thresholds:
            if count >= needed:
                target = level
        if target is None:
            return 0.0
        current = self.levels.get(source_name)
        if current is not None and current >= target:
            return 0.0

        method = self.program.methods.get(source_name)
        if method is None:
            return 0.0

        resilience = self.resilience
        instrumentation = self.config.instrumentation
        injector = None
        if resilience is not None:
            if not resilience.compile_allowed(source_name, count):
                # Blacklisted, or still inside the retry backoff window:
                # keep running the current (baseline or lower-tier) body.
                return 0.0
            instrumentation = resilience.instrumentation_for(
                source_name, instrumentation
            )
            injector = resilience.injector

        # Superblock advice: if the outgoing version had a hot trace,
        # hand its path number (plus the DAG fingerprint it belongs to)
        # to the recompile so the replacement starts hot when its P-DAG
        # numbers paths identically; a changed DAG misses cleanly.  The
        # PGO inline plans ride along the same way — the regenerated
        # trace keeps its guarded splices (the identity guard re-checks
        # the live callee at run time, so a stale plan only costs the
        # guard miss).
        superblock_advice = None
        if self._superblock:
            old_cm = self.code.get(source_name)
            if (
                old_cm is not None
                and old_cm.sb_path is not None
                and old_cm.dag is not None
            ):
                superblock_advice = (
                    old_cm.sb_path,
                    dag_fingerprint(old_cm.dag),
                    old_cm.pgo_inline,
                )

        version = self.versions[source_name] + 1
        try:
            cm, compile_cycles = optimize_method(
                method,
                self.program,
                target,
                vm.edge_profile,
                self.costs,
                version=version,
                instrumentation=instrumentation,
                injector=injector,
                superblock_advice=superblock_advice,
            )
        except CompilationError as exc:
            if resilience is None:
                raise
            # Jikes-style fallback: the method keeps its current body and
            # the controller retries later with exponential backoff.
            resilience.note_compile_failure(source_name, count, exc)
            return 0.0
        if resilience is not None:
            resilience.note_compile_success(source_name)
        vm.code[source_name] = cm
        self.code[source_name] = cm
        self.levels[source_name] = target
        self.versions[source_name] = version
        self.compile_log.append((source_name, target))
        if cm.resolver is not None:
            self.resolvers[cm.profile_key] = cm.resolver
        self._refresh_inline_callers(source_name)
        vm.charge_compile(compile_cycles)
        return compile_cycles

    def _refresh_inline_callers(self, callee_name: str) -> None:
        """Re-pin inline plans that advised the just-replaced callee.

        The splice guard tests the live method table by identity, so a
        callee recompile strands every caller's plan on the guard-miss
        arm.  Revalidate each affected plan against the new lowering and
        regenerate the caller's trace so the guard pins the live object
        (or, when the dominant path no longer validates, drop the site
        back to the normal call).  Zero virtual cycles, no profile
        writes — like promotion itself, observable only in wall clock.
        """
        if not (self._superblock and self._tracefast):
            return
        from repro.vm import pgo

        callee = self.code.get(callee_name)
        for name, caller in self.code.items():
            if name == callee_name or not caller.pgo_inline:
                continue
            if all(
                plan.callee_name != callee_name
                for plan in caller.pgo_inline.values()
            ):
                continue
            fresh = {}
            changed = False
            for site, plan in caller.pgo_inline.items():
                if plan.callee_name != callee_name:
                    fresh[site] = plan
                    continue
                new_plan = pgo.revalidate_inline_plan(plan, callee)
                if new_plan is not plan:
                    changed = True
                if new_plan is not None:
                    fresh[site] = new_plan
            if not changed:
                continue
            caller.pgo_inline = fresh or None
            if caller.sb_path is not None and caller.sb_entry is not None:
                # Force regeneration: the advice is baked into the
                # source (and its fingerprint), so the installed trace
                # is stale by construction.
                caller.sb_entry = None
                caller.sb_source = None
                caller.sb_fingerprint = None
                try:
                    install_superblock(caller, caller.sb_path, self.costs)
                except Exception:
                    # Degrade to plain blockjit rather than failing the
                    # recompile that triggered the refresh; the method
                    # stays runnable through its plain segments.
                    pass

    # -- superblock formation -----------------------------------------------

    def _maybe_superblock(self, vm: VirtualMachine, source_name: str) -> None:
        """Promote a dominant sampled path into a superblock trace.

        One decision per compiled version, taken once the method's path
        profile clears the configured sample floor.  Zero virtual
        cycles, no profile writes, no RNG draws on unconfigured fault
        plans — bit-identical whether or not it runs (the kill switch
        only moves wall clock).
        """
        if not self._superblock or not vm.use_blockjit:
            return
        cm = vm.code.get(source_name)
        if cm is None or cm.dag is None or cm.resolver is None:
            return
        if cm.sb_entry is not None and cm.sb_path != WARM_PATH:
            return
        key = cm.profile_key
        if key in self._sb_attempted:
            return
        counts = vm.path_profile.method_paths(key)
        path = find_dominant_path(
            counts,
            self.config.superblock_threshold,
            self.config.superblock_min_samples,
        )
        if path is None and self._kblpp:
            # k-iteration fallback (DESIGN.md §16): a bimodal loop whose
            # 1-paths split the samples may still have a dominant
            # k-window.  Eligibility is checked *before* the dominance
            # verdict is burned, so an unstitchable k-path (multi-header
            # window, fault-demoted table) falls through to the warm
            # ladder with 1-path dominance left open.
            path = self._find_kpath(vm, cm, key)
        if path is None:
            # No dominant path (yet): the warm ladder is the consolation
            # tier.  Dominance stays open — a later verdict upgrades the
            # ladder to a real trace (the one relaxation of first-wins).
            self._maybe_warmjit(vm, cm, source_name, key)
            return
        # A dominance verdict is final for this version: mark before the
        # attempt so a structurally ineligible path (or an injected
        # fault) degrades to plain blockjit permanently, not per-sample.
        self._sb_attempted.add(key)
        resilience = self.resilience
        injector = resilience.injector if resilience is not None else None
        if injector is not None and injector.should_fire(
            "superblock-compile", key
        ):
            resilience.health.record_degradation(
                "superblock-degrade",
                f"{source_name}: injected superblock-compile fault; "
                "staying on plain blockjit",
            )
            return
        # The tracefast backend has its own fault site; firing degrades
        # to plain blockjit (NOT to the superblock backend — the method
        # simply stays unpromoted).  The check only runs when the
        # tracefast tier is selected, so REPRO_TRACEFAST=0 runs are
        # byte-identical to PR-5 even under a tracefast-compile plan.
        if (
            self._tracefast
            and injector is not None
            and injector.should_fire("tracefast-compile", key)
        ):
            resilience.health.record_degradation(
                "tracefast-degrade",
                f"{source_name}: injected tracefast-compile fault; "
                "staying on plain blockjit",
            )
            return
        tier = "tracefast" if self._tracefast else "superblock"
        if self._tracefast:
            # Dominant-path inlining advice (DESIGN.md §14): computed
            # from the sampled call graph and the callees' own path
            # profiles at promotion time, attached to the method before
            # codegen so the generated source (and its fingerprint,
            # via pgo_fingerprint) reflects it.  A deterministic pure
            # read of VM state — no cycles, no profile writes — and
            # None whenever REPRO_PGO_INLINE is off.
            from repro.vm import pgo
            from repro.vm.superblock import trace_blocks

            trace = trace_blocks(cm, path)
            if trace is not None:
                cm.pgo_inline = pgo.compute_inline_advice(
                    cm,
                    [b.label for b in trace],
                    vm.code,
                    vm.call_graph,
                    vm.path_profile,
                    self.config.superblock_threshold,
                    self.config.superblock_min_samples,
                )
        try:
            installed = install_superblock(cm, path, self.costs)
        except Exception as exc:
            if resilience is not None:
                resilience.health.record_degradation(
                    f"{tier}-degrade",
                    f"{source_name}: {tier} compile failed ({exc}); "
                    "staying on plain blockjit",
                )
                return
            raise
        if installed:
            self.superblock_log.append((source_name, key, path))

    def _find_kpath(
        self, vm: VirtualMachine, cm: CompiledMethod, key: str
    ) -> Optional[int]:
        """A stitchable dominant k-path, encoded, or None.

        Reads the shadow ``vm.kpath_profile`` under the same dominance
        rule as 1-paths, then pre-validates trace expansion so only a
        window the backend can actually stitch (a mono-header cyclic
        window) reaches promotion.  Pure reads, zero virtual cycles;
        rejected windows are memoised per (version, number).
        """
        kpath = find_dominant_kpath(
            vm.kpath_profile.method_paths(key),
            self._kpath_threshold,
            self.config.superblock_min_samples,
        )
        if kpath is None:
            return None
        encoded = encode_kpath(kpath)
        if (key, encoded) in self._kpath_rejected:
            return None
        if trace_blocks(cm, encoded) is None:
            self._kpath_rejected.add((key, encoded))
            return None
        return encoded

    def _maybe_warmjit(
        self,
        vm: VirtualMachine,
        cm: CompiledMethod,
        source_name: str,
        key: str,
    ) -> None:
        """Promote a warm no-dominant-path method to the token ladder.

        Same contract as superblock promotion — one decision per
        compiled version, zero virtual cycles, no profile writes, no
        RNG draws on unconfigured fault plans — at a lower sample floor
        (``warmjit_min_samples``).  With the tier off (or the tracefast
        backend unselected) this is a pure no-op, so ``REPRO_WARMJIT=0``
        runs are byte-identical to PR-8 even under a warmjit fault plan.
        """
        if not self._warmjit:
            return
        if cm.sb_entry is not None or key in self._warm_attempted:
            return
        if self.samples.get(source_name, 0) < self.config.warmjit_min_samples:
            return
        # One verdict per version, exactly like dominance: a failed or
        # faulted attempt degrades to plain blockjit permanently for
        # this compiled version, not per-sample.
        self._warm_attempted.add(key)
        resilience = self.resilience
        injector = resilience.injector if resilience is not None else None
        if injector is not None and injector.should_fire(
            "warmjit-compile", key
        ):
            resilience.health.record_degradation(
                "warmjit-degrade",
                f"{source_name}: injected warmjit-compile fault; "
                "staying on plain blockjit",
            )
            return
        try:
            installed = install_superblock(cm, WARM_PATH, self.costs)
        except Exception as exc:
            if resilience is not None:
                resilience.health.record_degradation(
                    "warmjit-degrade",
                    f"{source_name}: warm ladder compile failed ({exc}); "
                    "staying on plain blockjit",
                )
                return
            raise
        if installed:
            self.warmjit_log.append((source_name, key))
