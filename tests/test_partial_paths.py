"""Tests for partial-path reconstruction (the yieldpoint-free variant).

The paper claims a partially taken path can be identified from the
partial path number with the same greedy algorithm; the property test
checks that claim exhaustively: for every full path and every prefix of
it, reconstructing from (prefix sum, prefix endpoint) returns exactly
that prefix.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PathReconstructionError
from repro.profiling.ballarus import assign_ball_larus_values
from repro.profiling.partial import nodes_reaching, reconstruct_partial

from tests.helpers import diamond_loop_method
from tests.test_cfg_dag import pep_dag_for
from tests.test_numbering import double_diamond_dag, layered_dags


def check_all_prefixes(dag):
    """The exhaustive prefix property on one numbered DAG."""
    assign_ball_larus_values(dag)
    for path in dag.enumerate_paths():
        running = 0
        prefix = []
        for edge in path:
            running += edge.value
            prefix.append(edge)
            got = reconstruct_partial(dag, running, edge.dst)
            assert [(e.src, e.dst, e.value) for e in got] == [
                (e.src, e.dst, e.value) for e in prefix
            ], f"prefix to {edge.dst} with value {running} misidentified"


def test_prefixes_on_double_diamond():
    check_all_prefixes(double_diamond_dag())


def test_prefixes_on_pep_dag():
    dag, _ = pep_dag_for(diamond_loop_method())
    check_all_prefixes(dag)


@settings(max_examples=40, deadline=None)
@given(layered_dags())
def test_prefix_property_on_random_dags(dag):
    check_all_prefixes(dag)


def test_nodes_reaching():
    dag = double_diamond_dag()
    assert nodes_reaching(dag, "a") == {"a"}
    assert nodes_reaching(dag, "g") == set("abcdefg")
    assert nodes_reaching(dag, "e") == {"a", "b", "c", "d", "e"}
    with pytest.raises(PathReconstructionError):
        nodes_reaching(dag, "ghost")


def test_partial_at_entry_requires_zero():
    dag = double_diamond_dag()
    assign_ball_larus_values(dag)
    assert reconstruct_partial(dag, 0, "a") == []
    with pytest.raises(PathReconstructionError):
        reconstruct_partial(dag, 1, "a")


def test_inconsistent_value_rejected():
    dag = double_diamond_dag()
    n = assign_ball_larus_values(dag)
    # The largest prefix sum to 'd' is 2 (via a->c); n-1=3 is impossible.
    with pytest.raises(PathReconstructionError):
        reconstruct_partial(dag, n - 1, "d")


def test_unnumbered_dag_rejected():
    dag = double_diamond_dag()
    with pytest.raises(PathReconstructionError):
        reconstruct_partial(dag, 0, "g")


def test_negative_value_rejected():
    dag = double_diamond_dag()
    assign_ball_larus_values(dag)
    with pytest.raises(PathReconstructionError):
        reconstruct_partial(dag, -1, "g")
